"""The query-serving layer: plan caching, strategy reuse, auto plans, batches.

:class:`~repro.planner.evaluator.TwigQueryEngine.execute` is built for
one-off measurements: every call re-parses the XPath, re-checks index
availability and instantiates a fresh strategy object.  Under a
repeated-query serving workload all of that is pure overhead.
:class:`QueryService` wraps an engine with the pieces a server needs:

* an LRU **plan cache** of parsed :class:`~repro.query.twig.TwigPattern`
  objects keyed on the normalised query text,
* **reusable strategy instances**, one per (strategy, options) pair,
  instead of a fresh object per query,
* a ``strategy="auto"`` mode that asks the optimizer
  (:func:`~repro.planner.optimizer.choose_strategy`, fed by the index
  catalog's ``estimate_matches`` statistics) for the estimated-cheapest
  strategy per query,
* an optional LRU **result cache**, invalidated whenever the document
  set or the built indexes change,
* :meth:`~QueryService.execute_batch`, which runs many queries under a
  single shared stats snapshot and reports batch-level totals.

The service watches a generation fingerprint of the database and the
engine's index-build and index-maintenance counters, so results cached
before an ``add_document`` / ``build_index`` can never be served
afterwards even when the mutation bypassed the service's own
:meth:`~QueryService.invalidate`.  The fingerprint distinguishes two
kinds of change:

* **incremental update** (a document was added and the built indexes
  absorbed it in place): cached results and optimizer choices are
  stale and dropped, but parsed plans and strategy instances stay —
  an add changes answers, not the query language or the index set;
* **rebuild** (an index was built or rebuilt): everything is dropped,
  including the plan cache and the reusable strategy instances.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from ..errors import PlanningError
from ..planner.evaluator import QueryResult, STRATEGY_TYPES, TwigQueryEngine
from ..planner.analysis import TwigAnalysis
from ..planner.optimizer import AUTO_CANDIDATES, StrategyChoice, choose_strategy
from ..planner.strategies import EvaluationStrategy
from ..query.parser import normalize_xpath, parse_xpath
from ..query.twig import TwigPattern
from ..storage.stats import weighted_cost
from .cache import LRUCache

#: The pseudo-strategy name that delegates plan choice to the optimizer.
AUTO_STRATEGY = "auto"


@dataclass
class BatchResult:
    """The answers to one query batch plus batch-level measurements.

    ``cost`` is the delta of one shared stats snapshot taken around the
    whole batch, so it prices exactly the logical work the batch charged
    — cached answers contribute nothing to it.
    """

    results: list[QueryResult]
    elapsed_seconds: float
    cost: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    strategy_counts: dict[str, int] = field(default_factory=dict)

    @property
    def total_cost(self) -> int:
        """Weighted logical cost of the whole batch (shared formula)."""
        return weighted_cost(self.cost)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class QueryService:
    """A serving facade over :class:`TwigQueryEngine` for repeated queries."""

    def __init__(
        self,
        engine: TwigQueryEngine,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        auto_candidates: Sequence[str] = AUTO_CANDIDATES,
    ) -> None:
        self.engine = engine
        self.plan_cache = LRUCache(plan_cache_size)
        self.result_cache = LRUCache(result_cache_size)
        #: Memoised StrategyChoice per normalized query; flushed with the
        #: result cache (a choice depends on the built-index generation).
        self.choice_cache = LRUCache(plan_cache_size)
        self.auto_candidates = tuple(auto_candidates)
        for name in self.auto_candidates:
            if name not in STRATEGY_TYPES:
                raise ValueError(
                    f"unknown auto candidate {name!r}; known: {sorted(STRATEGY_TYPES)}"
                )
        self._strategies: dict[tuple, EvaluationStrategy] = {}
        self._generation: Optional[tuple] = None
        self.invalidations = 0
        #: How many invalidations only dropped results (incremental
        #: document adds) vs flushed everything (index rebuilds).
        self.result_invalidations = 0
        self.full_invalidations = 0
        self.auto_choice_counts: dict[str, int] = {}
        self.last_choice: Optional[StrategyChoice] = None

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def plan(self, query: Union[str, TwigPattern]) -> TwigPattern:
        """The parsed twig for a query, served from the plan cache."""
        if isinstance(query, TwigPattern):
            return query
        key = normalize_xpath(query)
        twig = self.plan_cache.get(key)
        if twig is None:
            twig = parse_xpath(query)
            self.plan_cache.put(key, twig)
        return twig

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, rebuilt: bool = True) -> None:
        """Drop stale caches after a document or index change.

        ``rebuilt=True`` (an index was built or rebuilt) flushes
        everything: results, optimizer choices, parsed plans and the
        reusable strategy instances.  ``rebuilt=False`` (a document was
        added and the indexes were maintained in place) drops only the
        result and choice caches — parsed plans and strategy instances
        remain valid.  A ``rebuilt=False`` call that finds an
        unobserved index build in the generation fingerprint escalates
        to a full flush — adopting the build silently would skip the
        rebuild contract.
        """
        current = self._current_generation()
        if (
            not rebuilt
            and self._generation is not None
            and current[1] != self._generation[1]
        ):
            rebuilt = True
        self._flush(rebuilt)
        self._generation = current

    def _flush(self, rebuilt: bool) -> None:
        self.result_cache.clear()
        self.choice_cache.clear()
        if rebuilt:
            self.plan_cache.clear()
            self._strategies.clear()
            self.full_invalidations += 1
        else:
            self.result_invalidations += 1
        self.invalidations += 1

    def _current_generation(self) -> tuple:
        return (
            self.engine.db.revision,
            self.engine.build_count,
            self.engine.update_count,
        )

    def _check_generation(self) -> None:
        current = self._current_generation()
        if self._generation is None:
            self._generation = current
        elif current != self._generation:
            # A build_count move means an index was (re)built; a move in
            # the database revision or the maintenance counter alone is
            # an incremental update.
            self._flush(rebuilt=current[1] != self._generation[1])
            self._generation = current

    # ------------------------------------------------------------------
    # Strategy reuse and auto choice
    # ------------------------------------------------------------------
    def strategy_instance(
        self, name: str, **strategy_options
    ) -> EvaluationStrategy:
        """A reusable strategy instance (required indexes built on demand)."""
        self.engine.ensure_indexes_for(name)
        key = self._options_key(name, strategy_options)
        if key is None:
            return self.engine.strategy(name, **strategy_options)
        instance = self._strategies.get(key)
        if instance is None:
            strategy_class = STRATEGY_TYPES[name]
            instance = strategy_class(
                self.engine.db,
                self.engine.indexes,
                stats=self.engine.stats,
                **strategy_options,
            )
            self._strategies[key] = instance
        return instance

    @staticmethod
    def _options_key(name: str, options: dict) -> Optional[tuple]:
        try:
            key = (name, tuple(sorted(options.items())))
            hash(key)  # building the tuple alone never hashes the values
        except TypeError:
            # Unhashable option values cannot key the caches.
            return None
        return key

    def choose(self, query: Union[str, TwigPattern]) -> StrategyChoice:
        """The optimizer's strategy pick for one query (``auto`` mode).

        Candidates are restricted to strategies whose indexes are
        already built; with none built, the first candidate's indexes
        are built (with their recorded options) and it is chosen.
        Choices are memoised per normalized query until the document
        set or the built indexes change.
        """
        self._check_generation()
        twig = self.plan(query)
        xpath = query if isinstance(query, str) else twig.to_xpath()
        return self._choose_cached(twig, xpath)

    def _choose_cached(self, twig: TwigPattern, xpath: str) -> StrategyChoice:
        key = normalize_xpath(xpath)
        choice = self.choice_cache.get(key)
        if choice is None:
            choice = self._choose(twig)
            self.choice_cache.put(key, choice)
        self.last_choice = choice
        return choice

    def _choose(self, twig: TwigPattern) -> StrategyChoice:
        candidates = self._available_candidates()
        catalog = self._catalog_index()
        if catalog is None:
            if len(candidates) == 1:
                # Nothing to rank, and no statistics to rank with: the
                # single viable candidate wins without building anything.
                return StrategyChoice(candidates[0], {candidates[0]: 0.0}, None)
            raise PlanningError(
                "strategy='auto' needs the catalog statistics of a built "
                "ROOTPATHS or DATAPATHS index to rank "
                f"{sorted(candidates)}; build one of them first"
            )
        return choose_strategy(
            TwigAnalysis(twig),
            catalog,
            candidates=candidates,
            indexes=self.engine.indexes,
        )

    def _available_candidates(self) -> tuple[str, ...]:
        available = tuple(
            name
            for name in self.auto_candidates
            if all(
                index_name in self.engine.indexes
                for index_name in STRATEGY_TYPES[name].required_indexes
            )
        )
        if available:
            return available
        fallback = self.auto_candidates[0]
        self.engine.ensure_indexes_for(fallback)
        return (fallback,)

    def _catalog_index(self):
        """A built index carrying ``estimate_matches`` statistics, if any.

        Never builds one: silently constructing a full index just to
        read its statistics would be an expensive surprise.
        """
        for name in ("rootpaths", "datapaths"):
            index = self.engine.indexes.get(name)
            if index is not None:
                return index
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        **strategy_options,
    ) -> QueryResult:
        """Evaluate one query through the caches and the optimizer.

        ``strategy`` is a fixed strategy name or ``"auto"``.  Cached
        answers come back with ``cached=True`` and the cost counters of
        the execution that produced them.
        """
        self._check_generation()
        twig = self.plan(query)
        xpath = query if isinstance(query, str) else twig.to_xpath()
        cache_key = self._result_key(xpath, strategy, strategy_options)
        if use_result_cache and cache_key is not None:
            hit = self.result_cache.get(cache_key)
            if hit is not None:
                return self._copy_result(hit, cached=True)
        result = self._execute_uncached(twig, xpath, strategy, strategy_options)
        # An on-demand index build during execution bumps the generation;
        # the result reflects the post-build state, so adopt it before
        # caching rather than letting the next call flush this entry.
        self._generation = self._current_generation()
        if use_result_cache and cache_key is not None:
            # Cache a private copy: the caller owns the returned object
            # and may mutate its ids/cost without poisoning later hits.
            self.result_cache.put(cache_key, self._copy_result(result))
        return result

    @staticmethod
    def _copy_result(result: QueryResult, cached: bool = False) -> QueryResult:
        return dataclasses.replace(
            result, ids=list(result.ids), cost=dict(result.cost), cached=cached
        )

    def _result_key(
        self, xpath: str, strategy: str, strategy_options: dict
    ) -> Optional[tuple]:
        options_key = self._options_key(strategy, strategy_options)
        if options_key is None:
            return None
        return (normalize_xpath(xpath), options_key)

    def _execute_uncached(
        self, twig: TwigPattern, xpath: str, strategy: str, strategy_options: dict
    ) -> QueryResult:
        if strategy == AUTO_STRATEGY:
            choice = self._choose_cached(twig, xpath)
            strategy = choice.strategy
            self.auto_choice_counts[strategy] = (
                self.auto_choice_counts.get(strategy, 0) + 1
            )
            if (
                strategy == "datapaths"
                and choice.datapaths_plan is not None
                and "force_plan" not in strategy_options
            ):
                # Execute the plan the estimate priced; left to itself the
                # strategy would re-choose with the paper's flat probe
                # charge and could diverge from the costed plan.
                strategy_options = dict(strategy_options)
                strategy_options["force_plan"] = choice.datapaths_plan.plan
        runner = self.strategy_instance(strategy, **strategy_options)
        return self.engine.execute_prepared(runner, twig, xpath=xpath)

    def execute_batch(
        self,
        queries: Iterable[Union[str, TwigPattern]],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        **strategy_options,
    ) -> BatchResult:
        """Evaluate many queries under one shared stats snapshot.

        Returns a :class:`BatchResult` whose ``cost`` is the counter
        delta across the whole batch — the logical work actually
        charged, with repeated queries served from the result cache for
        free.
        """
        before = self.engine.stats.snapshot()
        started = time.perf_counter()
        results: list[QueryResult] = []
        hits = 0
        strategy_counts: dict[str, int] = {}
        for query in queries:
            result = self.execute(
                query,
                strategy=strategy,
                use_result_cache=use_result_cache,
                **strategy_options,
            )
            hits += 1 if result.cached else 0
            strategy_counts[result.strategy] = (
                strategy_counts.get(result.strategy, 0) + 1
            )
            results.append(result)
        elapsed = time.perf_counter() - started
        return BatchResult(
            results=results,
            elapsed_seconds=elapsed,
            cost=self.engine.stats.diff(before),
            cache_hits=hits,
            cache_misses=len(results) - hits,
            strategy_counts=strategy_counts,
        )

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Cache and optimizer counters (for logs and benchmarks)."""
        return {
            "plan_cache": {
                "size": len(self.plan_cache),
                "hits": self.plan_cache.hits,
                "misses": self.plan_cache.misses,
                "hit_rate": self.plan_cache.hit_rate,
            },
            "result_cache": {
                "size": len(self.result_cache),
                "hits": self.result_cache.hits,
                "misses": self.result_cache.misses,
                "hit_rate": self.result_cache.hit_rate,
            },
            "choice_cache": {
                "size": len(self.choice_cache),
                "hits": self.choice_cache.hits,
                "misses": self.choice_cache.misses,
            },
            "strategy_instances": len(self._strategies),
            "auto_choice_counts": dict(self.auto_choice_counts),
            "invalidations": self.invalidations,
            "result_invalidations": self.result_invalidations,
            "full_invalidations": self.full_invalidations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryService(plans={len(self.plan_cache)}, "
            f"results={len(self.result_cache)}, "
            f"strategies={len(self._strategies)})"
        )
