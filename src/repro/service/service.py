"""The query-serving layer: plan caching, strategy reuse, auto plans, batches.

:class:`~repro.planner.evaluator.TwigQueryEngine.execute` is built for
one-off measurements: every call re-parses the XPath, re-checks index
availability and instantiates a fresh strategy object.  Under a
repeated-query serving workload all of that is pure overhead.
:class:`QueryService` wraps an engine with the pieces a server needs:

* an LRU **plan cache** of parsed :class:`~repro.query.twig.TwigPattern`
  objects keyed on the normalised query text,
* **reusable strategy instances**, one per (strategy, options) pair,
  instead of a fresh object per query,
* a ``strategy="auto"`` mode that asks the optimizer
  (:func:`~repro.planner.optimizer.choose_strategy`, fed by the index
  catalog's ``estimate_matches`` statistics) for the estimated-cheapest
  strategy per query,
* an optional LRU **result cache** (with an optional TTL admission
  policy), invalidated whenever the document set or the built indexes
  change,
* :meth:`~QueryService.execute_batch`, which runs many queries under a
  single shared stats snapshot and reports batch-level totals.

The service watches a generation fingerprint of the database and the
engine's index-build and index-maintenance counters, so results cached
before an ``add_document`` / ``remove_document`` / ``build_index`` can
never be served afterwards even when the mutation bypassed the
service's own :meth:`~QueryService.invalidate`.  The fingerprint
distinguishes two kinds of change (see ``docs/ARCHITECTURE.md``,
"Generations and invalidation"):

* **incremental update** (a document was added, removed or replaced
  and the built indexes absorbed the change in place): cached results
  and optimizer choices are stale and dropped, but parsed plans and
  strategy instances stay — a document mutation changes answers, not
  the query language or the index set;
* **rebuild** (an index was built or rebuilt): everything is dropped,
  including the plan cache and the reusable strategy instances.

Every public entry point runs under one re-entrant lock, so a service
(and therefore one shard of a
:class:`~repro.shard.ShardedQueryService`) can be hammered by reader
threads while another thread adds documents: execution, cache
invalidation and index maintenance serialize per service, and the
sharded tier gets its parallelism *across* shards, each with its own
lock, engine and stats collector.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Union

from ..errors import PlanningError
from ..obs import Telemetry
from ..planner.evaluator import QueryResult, STRATEGY_TYPES, TwigQueryEngine
from ..planner.analysis import TwigAnalysis
from ..planner.optimizer import AUTO_CANDIDATES, StrategyChoice, choose_strategy
from ..planner.strategies import EvaluationStrategy
from ..query.parser import normalize_xpath, parse_xpath
from ..query.twig import TwigPattern
from ..xmltree.document import Document
from .base import AUTO_STRATEGY, BatchResult, ServingFacade
from .cache import LRUCache

__all__ = ["AUTO_STRATEGY", "BatchResult", "QueryService"]


class QueryService(ServingFacade):
    """A serving facade over :class:`TwigQueryEngine` for repeated queries."""

    def __init__(
        self,
        engine: TwigQueryEngine,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl: Optional[float] = None,
        auto_candidates: Sequence[str] = AUTO_CANDIDATES,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.engine = engine
        #: The observability hub.  A standalone service gets its own;
        #: shard-embedded services receive the stack-wide hub so every
        #: layer's spans and events land in one trace tree and one log.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.plan_cache = LRUCache(
            plan_cache_size, on_clear=self._cache_clear_listener("plan")
        )
        self.result_cache = LRUCache(
            result_cache_size,
            ttl_seconds=result_cache_ttl,
            on_clear=self._cache_clear_listener("result"),
        )
        #: Memoised StrategyChoice per normalized query; flushed with the
        #: result cache (a choice depends on the built-index generation).
        self.choice_cache = LRUCache(
            plan_cache_size, on_clear=self._cache_clear_listener("choice")
        )
        self.auto_candidates = tuple(auto_candidates)
        for name in self.auto_candidates:
            if name not in STRATEGY_TYPES:
                raise ValueError(
                    f"unknown auto candidate {name!r}; known: {sorted(STRATEGY_TYPES)}"
                )
        self._strategies: dict[tuple, EvaluationStrategy] = {}
        self._generation: Optional[tuple] = None
        #: Serializes execution against document adds and index builds.
        self._lock = threading.RLock()
        self.invalidations = 0
        #: How many invalidations only dropped results (incremental
        #: document mutations) vs flushed everything (index rebuilds).
        self.result_invalidations = 0
        self.full_invalidations = 0
        #: Document-mutation counters surfaced by :meth:`describe` so
        #: benchmarks can assert on maintenance activity.
        self.documents_added = 0
        self.documents_removed = 0
        self.documents_replaced = 0
        self.auto_choice_counts: dict[str, int] = {}
        self.last_choice: Optional[StrategyChoice] = None

    def _cache_clear_listener(self, cache_name: str):
        """An ``on_clear`` callback publishing cache-invalidation events.

        Empty clears are not events — invalidating an already-empty
        cache is bookkeeping, not an operational transition worth a log
        record.
        """

        def on_clear(dropped: int) -> None:
            if dropped:
                self.telemetry.event(
                    "cache-invalidated", cache=cache_name, entries=dropped
                )

        return on_clear

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def plan(self, query: Union[str, TwigPattern]) -> TwigPattern:
        """The parsed twig for a query, served from the plan cache."""
        if isinstance(query, TwigPattern):
            return query
        with self._lock:
            key = normalize_xpath(query)
            twig = self.plan_cache.get(key)
            if twig is None:
                twig = parse_xpath(query)
                self.plan_cache.put(key, twig)
            return twig

    # ------------------------------------------------------------------
    # Mutation (locked against execution)
    # ------------------------------------------------------------------
    def add_document(self, document: Document) -> Document:
        """Add a document through the engine under the service lock.

        Built indexes absorb the document incrementally where they can
        (see :meth:`TwigQueryEngine.add_document`); cached results and
        optimizer choices are dropped, parsed plans and strategy
        instances survive.  Readers in other threads never observe the
        half-maintained state because they serialize on the same lock.
        """
        with self.telemetry.span(
            "index-maintain", stats=self.engine.stats, operation="add-document"
        ):
            with self._lock:
                added = self.engine.add_document(document)
                self.documents_added += 1
                self.invalidate(rebuilt=False)
                return added

    def remove_document(self, ref: Union[Document, str]) -> Document:
        """Remove a document through the engine under the service lock.

        Built indexes forget the document incrementally where they can
        (see :meth:`TwigQueryEngine.remove_document`).  A removal is an
        incremental update to the generation model: cached results and
        optimizer choices are dropped, parsed plans and strategy
        instances survive — removing data changes answers, not plans.
        Returns the detached document.
        """
        with self.telemetry.span(
            "index-maintain", stats=self.engine.stats, operation="remove-document"
        ):
            with self._lock:
                removed = self.engine.remove_document(ref)
                self.documents_removed += 1
                self.invalidate(rebuilt=False)
                return removed

    def replace_document(
        self, ref: Union[Document, str], replacement: Document
    ) -> Document:
        """Replace a document (remove + add) atomically under the lock.

        Readers serialize on the service lock, so no query can observe
        the half-replaced state (old version gone, new version not yet
        added).  One incremental invalidation covers both halves.
        Returns the added replacement.
        """
        with self.telemetry.span(
            "index-maintain", stats=self.engine.stats, operation="replace-document"
        ):
            with self._lock:
                added = self.engine.replace_document(ref, replacement)
                self.documents_replaced += 1
                self.invalidate(rebuilt=False)
                return added

    def build_index(self, name: str, **options):
        """Build (or rebuild) an index under the service lock.

        Flushes every cache tier: a rebuild invalidates results, plans,
        optimizer choices and strategy instances alike.
        """
        with self.telemetry.span(
            "index-maintain",
            stats=self.engine.stats,
            operation="build-index",
            index=name,
        ):
            with self._lock:
                index = self.engine.build_index(name, **options)
                self.invalidate(rebuilt=True)
                return index

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, rebuilt: bool = True) -> None:
        """Drop stale caches after a document or index change.

        ``rebuilt=True`` (an index was built or rebuilt) flushes
        everything: results, optimizer choices, parsed plans and the
        reusable strategy instances.  ``rebuilt=False`` (a document was
        added, removed or replaced and the indexes were maintained in
        place) drops only the result and choice caches — parsed plans
        and strategy instances remain valid.  A ``rebuilt=False`` call
        that finds an
        unobserved index build in the generation fingerprint escalates
        to a full flush — adopting the build silently would skip the
        rebuild contract.
        """
        with self._lock:
            current = self._current_generation()
            if (
                not rebuilt
                and self._generation is not None
                and current[1] != self._generation[1]
            ):
                rebuilt = True
            self._flush(rebuilt)
            self._generation = current

    def _flush(self, rebuilt: bool) -> None:
        self.result_cache.clear()
        self.choice_cache.clear()
        if rebuilt:
            self.plan_cache.clear()
            self._strategies.clear()
            self.full_invalidations += 1
        else:
            self.result_invalidations += 1
        self.invalidations += 1

    def _current_generation(self) -> tuple:
        return (
            self.engine.db.revision,
            self.engine.build_count,
            self.engine.update_count,
        )

    def generation(self) -> tuple:
        """The service's change fingerprint, read lock-free.

        Deliberately *not* taken under the service lock: the front
        door's event loop reads it on every request, and queuing behind
        an executing query would serialize the whole front door on one
        shard's lock.  The components are single attribute reads, each
        updated before its write returns to the caller, so any
        client-visible write is reflected in every later ``generation``
        read — a torn read during a racing write can only produce a
        transient extra value, which merely splits one coalescing group
        in two (correct, just less shared).
        """
        return self._current_generation()

    def _check_generation(self) -> None:
        current = self._current_generation()
        if self._generation is None:
            self._generation = current
        elif current != self._generation:
            # A build_count move means an index was (re)built; a move in
            # the database revision or the maintenance counter alone is
            # an incremental update.
            self._flush(rebuilt=current[1] != self._generation[1])
            self._generation = current

    # ------------------------------------------------------------------
    # Strategy reuse and auto choice
    # ------------------------------------------------------------------
    def strategy_instance(
        self, name: str, **strategy_options
    ) -> EvaluationStrategy:
        """A reusable strategy instance (required indexes built on demand)."""
        with self._lock:
            self.engine.ensure_indexes_for(name)
            # Pin the engine's kernel default into the options so cached
            # instances are keyed by the kernel flag they run with.
            strategy_options.setdefault("use_kernels", self.engine.use_kernels)
            key = self._options_key(name, strategy_options)
            if key is None:
                return self.engine.strategy(name, **strategy_options)
            instance = self._strategies.get(key)
            if instance is None:
                strategy_class = STRATEGY_TYPES[name]
                instance = strategy_class(
                    self.engine.db,
                    self.engine.indexes,
                    stats=self.engine.stats,
                    **strategy_options,
                )
                self._strategies[key] = instance
            return instance

    def choose(self, query: Union[str, TwigPattern]) -> StrategyChoice:
        """The optimizer's strategy pick for one query (``auto`` mode).

        Candidates are restricted to strategies whose indexes are
        already built; with none built, the first candidate's indexes
        are built (with their recorded options) and it is chosen.
        Choices are memoised per normalized query until the document
        set or the built indexes change.
        """
        with self._lock:
            self._check_generation()
            twig = self.plan(query)
            xpath = query if isinstance(query, str) else twig.to_xpath()
            return self._choose_cached(twig, xpath)

    def _choose_cached(self, twig: TwigPattern, xpath: str) -> StrategyChoice:
        key = normalize_xpath(xpath)
        choice = self.choice_cache.get(key)
        if choice is None:
            choice = self._choose(twig)
            self.choice_cache.put(key, choice)
        self.last_choice = choice
        return choice

    def _choose(self, twig: TwigPattern) -> StrategyChoice:
        candidates = self._available_candidates()
        catalog = self._catalog_index()
        if catalog is None:
            if len(candidates) == 1:
                # Nothing to rank, and no statistics to rank with: the
                # single viable candidate wins without building anything.
                return StrategyChoice(candidates[0], {candidates[0]: 0.0}, None)
            raise PlanningError(
                "strategy='auto' needs the catalog statistics of a built "
                "ROOTPATHS or DATAPATHS index to rank "
                f"{sorted(candidates)}; build one of them first"
            )
        return choose_strategy(
            TwigAnalysis(twig),
            catalog,
            candidates=candidates,
            indexes=self.engine.indexes,
        )

    def _available_candidates(self) -> tuple[str, ...]:
        available = tuple(
            name
            for name in self.auto_candidates
            if all(
                index_name in self.engine.indexes
                for index_name in STRATEGY_TYPES[name].required_indexes
            )
        )
        if available:
            return available
        fallback = self.auto_candidates[0]
        self.engine.ensure_indexes_for(fallback)
        return (fallback,)

    def _catalog_index(self):
        """A built index carrying ``estimate_matches`` statistics, if any.

        Never builds one: silently constructing a full index just to
        read its statistics would be an expensive surprise.
        """
        for name in ("rootpaths", "datapaths"):
            index = self.engine.indexes.get(name)
            if index is not None:
                return index
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        query_id: Optional[str] = None,
        **strategy_options,
    ) -> QueryResult:
        """Evaluate one query through the caches and the optimizer.

        ``strategy`` is a fixed strategy name or ``"auto"``.  Cached
        answers come back with ``cached=True`` and the cost counters of
        the execution that produced them.  ``query_id`` (optional)
        names the request in the query's trace and slow-query entries;
        it never enters a cache key.
        """
        attributes = {"tier": "engine"}
        if isinstance(query, str):
            attributes["xpath"] = query
        if query_id is not None:
            attributes["query_id"] = query_id
        with self.telemetry.span(
            "query", stats=self.engine.stats, **attributes
        ) as root:
            result = self._execute_traced(
                root, query, strategy, use_result_cache, strategy_options
            )
            root.annotate(
                strategy=result.strategy, cached=result.cached, ids=len(result.ids)
            )
        self.telemetry.record_query(
            "engine", result.strategy, root.duration_seconds, result.cached
        )
        return result

    def _execute_traced(
        self,
        root,
        query: Union[str, TwigPattern],
        strategy: str,
        use_result_cache: bool,
        strategy_options: dict,
    ) -> QueryResult:
        with self._lock:
            self._check_generation()
            with self.telemetry.span("plan"):
                twig = self.plan(query)
            xpath = query if isinstance(query, str) else twig.to_xpath()
            root.annotate(xpath=xpath)
            cache_key = self._result_key(xpath, strategy, strategy_options)
            if use_result_cache and cache_key is not None:
                with self.telemetry.span("cache-lookup") as lookup:
                    hit = self.result_cache.get(cache_key)
                    lookup.annotate(outcome="hit" if hit is not None else "miss")
                if hit is not None:
                    return self._copy_result(hit, cached=True)
            result = self._execute_uncached(twig, xpath, strategy, strategy_options)
            # An on-demand index build during execution bumps the
            # generation; the result reflects the post-build state, so
            # adopt it before caching rather than letting the next call
            # flush this entry.
            self._generation = self._current_generation()
            if use_result_cache and cache_key is not None:
                # Cache a private copy: the caller owns the returned object
                # and may mutate its ids/cost without poisoning later hits.
                self.result_cache.put(cache_key, self._copy_result(result))
            return result

    def _execute_uncached(
        self, twig: TwigPattern, xpath: str, strategy: str, strategy_options: dict
    ) -> QueryResult:
        if strategy == AUTO_STRATEGY:
            with self.telemetry.span("choose") as chosen:
                choice = self._choose_cached(twig, xpath)
                strategy = choice.strategy
                chosen.annotate(strategy=strategy)
            self.auto_choice_counts[strategy] = (
                self.auto_choice_counts.get(strategy, 0) + 1
            )
            if (
                strategy == "datapaths"
                and choice.datapaths_plan is not None
                and "force_plan" not in strategy_options
            ):
                # Execute the plan the estimate priced; left to itself the
                # strategy would re-choose with the paper's flat probe
                # charge and could diverge from the costed plan.
                strategy_options = dict(strategy_options)
                strategy_options["force_plan"] = choice.datapaths_plan.plan
        runner = self.strategy_instance(strategy, **strategy_options)
        with self.telemetry.span("execute", strategy=strategy):
            return self.engine.execute_prepared(runner, twig, xpath=xpath)

    # ------------------------------------------------------------------
    # Stats hooks for the shared batch loop
    # ------------------------------------------------------------------
    def _stats_snapshot(self):
        return self.engine.stats.snapshot()

    def _stats_diff(self, before) -> dict[str, int]:
        return self.engine.stats.diff(before)

    # ------------------------------------------------------------------
    # Observability scrape hooks
    # ------------------------------------------------------------------
    def _activity_counters(self) -> dict[str, int]:
        return self.engine.stats.snapshot()

    def _cache_reports(self) -> dict[str, dict[str, object]]:
        with self._lock:
            return {
                "plan": self.plan_cache.describe(),
                "result": self.result_cache.describe(),
                "choice": self.choice_cache.describe(),
            }

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Cache and optimizer counters (for logs and benchmarks)."""
        with self._lock:
            return {
                "telemetry": self.telemetry.describe(),
                "plan_cache": self._cache_report(self.plan_cache),
                "result_cache": self._cache_report(self.result_cache),
                "choice_cache": self._cache_report(self.choice_cache),
                "strategy_instances": len(self._strategies),
                "auto_choice_counts": dict(self.auto_choice_counts),
                "invalidations": self.invalidations,
                "result_invalidations": self.result_invalidations,
                "full_invalidations": self.full_invalidations,
                "maintenance": {
                    "documents_added": self.documents_added,
                    "documents_removed": self.documents_removed,
                    "documents_replaced": self.documents_replaced,
                    "index_builds": self.engine.build_count,
                    "index_updates": self.engine.update_count,
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryService(plans={len(self.plan_cache)}, "
            f"results={len(self.result_cache)}, "
            f"strategies={len(self._strategies)})"
        )
