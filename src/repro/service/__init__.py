"""Query-serving layer: plan/result caching and optimizer-driven strategy choice.

Sits between the :class:`~repro.engine.TwigIndexDatabase` facade and the
:class:`~repro.planner.evaluator.TwigQueryEngine`, amortising per-query
setup (parsing, index checks, strategy construction) across a serving
workload and delegating strategy choice to the planner's cost models.
"""

from .cache import LRUCache
from .service import AUTO_STRATEGY, BatchResult, QueryService

__all__ = [
    "AUTO_STRATEGY",
    "BatchResult",
    "LRUCache",
    "QueryService",
]
