"""Query-serving layer: plan/result caching and optimizer-driven strategy choice.

Sits between the :class:`~repro.engine.TwigIndexDatabase` facade and the
:class:`~repro.planner.evaluator.TwigQueryEngine`, amortising per-query
setup (parsing, index checks, strategy construction) across a serving
workload and delegating strategy choice to the planner's cost models.

:class:`ServingFacade` holds the engine-count-agnostic machinery (batch
loop, cache keys, counter reporting); :class:`QueryService` is the
single-engine serving tier; the horizontally partitioned tier lives in
:mod:`repro.shard` and shares the same facade base.
"""

from .base import AUTO_STRATEGY, BatchResult, ServingFacade
from .cache import LRUCache
from .service import QueryService

__all__ = [
    "AUTO_STRATEGY",
    "BatchResult",
    "LRUCache",
    "QueryService",
    "ServingFacade",
]
