"""The routing table of the sharded tier: placements, epochs, compaction.

:class:`ShardTopology` is the single source of truth for *where every
document lives* and *how shard-local node ids translate into the global
id space*.  It factors the bookkeeping that used to be baked into
:class:`~repro.shard.collection.ShardedCollection` into an explicit,
separately testable layer, which is what makes the topology *dynamic*:
a document's placement is a routing-table entry that can be retired and
re-recorded on another shard (:meth:`ShardTopology.record_move`), not a
fact frozen at add time.

The table is a set of :class:`DocumentPlacement` records, each mapping
one document to its owning shard, its shard-local id interval and its
*global* id interval (the ids a single database receiving the same
documents in the same arrival order would have assigned).  Three
invariants make the sharded tier answer-identical to one engine:

* **global spans never change** — moving a document between shards
  gives it a new shard-local interval but keeps its global interval, so
  merged answers are bit-identical to a single engine's before, during
  and after a rebalance;
* **ids are never reused** — both the global watermark and every
  shard's local watermark only grow, so a retired placement's spans
  stay unambiguous forever;
* **every routing mutation is one critical section** — a move retires
  the source span and records the target span under one lock hold, so
  a concurrent reader translating an answer sees either the old routing
  or the new, never a half-updated table.

**Epochs.**  Every routing mutation (reserve, retire, move, compact)
bumps :attr:`ShardTopology.epoch`, a cheap version counter callers can
fingerprint to detect topology change without diffing the table — the
topology-level analogue of the per-shard service generations described
in ``docs/ARCHITECTURE.md`` ("Generations and invalidation").

**Retired spans and compaction.**  Removing or moving a document
retires its placement: it leaves the live maps (name lookup, scatter
pruning, ``placements()``) but its span stays translatable, so an
in-flight answer computed against the pre-mutation shard snapshot can
still be mapped to global ids — the consistent-cut contract.  Retired
spans live *outside* the hot translation path: the ascending merge walk
of :meth:`translate_sorted` touches live spans only, and falls back to
a binary search over the retired list just for the (rare, racing) ids
live spans do not cover.  Long churn workloads can therefore
accumulate retired spans without slowing steady-state translation, and
:meth:`compact` prunes them outright once in-flight readers have
drained — after which pre-compaction snapshot answers no longer
translate, which is the documented trade of reclaiming the memory.
"""

from __future__ import annotations

import bisect
import dataclasses
import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import DocumentError
from ..xmltree.document import VIRTUAL_ROOT_ID


@dataclass(frozen=True)
class DocumentPlacement:
    """Where one document lives and which id intervals it owns.

    ``local_*`` bounds are in the owning shard's id space, ``global_*``
    bounds in the equivalent single-database id space; both intervals
    are half-open and have equal length, so translation is the linear
    shift ``global_start + (local_id - local_start)``.  Records are
    immutable: moving a document produces a *new* placement with the
    same name, ordinal and global interval but a new shard and local
    interval, and retires this one.
    """

    name: str
    ordinal: int
    shard_index: int
    local_start: int
    local_end: int
    global_start: int
    global_end: int

    @property
    def node_count(self) -> int:
        """Number of node ids (structural and value) the document owns."""
        return self.local_end - self.local_start


def _local_start(placement: DocumentPlacement) -> int:
    return placement.local_start


class ShardTopology:
    """The versioned routing table behind a sharded collection.

    All methods are thread-safe under one re-entrant lock; the lock is
    never held across engine work (the collection holds its per-shard
    add locks for that), only across the table mutations themselves —
    which is what makes each routing change atomic for readers.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self._num_shards = num_shards
        self._lock = threading.RLock()
        self._next_ordinal = 0
        self._global_next = 1
        #: Version counter: bumped by every routing mutation.
        self._epoch = 0
        #: Live placements by ordinal (arrival identity of a document).
        self._by_ordinal: dict[int, DocumentPlacement] = {}
        self._by_name: dict[str, list[DocumentPlacement]] = {}
        #: Per shard, live placements sorted by ``local_start`` — the
        #: hot path of id translation.  Appends are always in order
        #: (local starts are shard watermarks, which only grow).
        self._live_spans: list[list[DocumentPlacement]] = [
            [] for _ in range(num_shards)
        ]
        #: Per shard, retired placements sorted by ``local_start`` —
        #: consulted only when a live span does not cover an id, and
        #: emptied by :meth:`compact`.
        self._retired_spans: list[list[DocumentPlacement]] = [
            [] for _ in range(num_shards)
        ]
        self.documents_moved = 0
        self.spans_retired = 0
        self.spans_pruned = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # Versioning and sizes
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def epoch(self) -> int:
        """Routing-table version; any mutation makes it grow."""
        with self._lock:
            return self._epoch

    @property
    def document_count(self) -> int:
        with self._lock:
            return len(self._by_ordinal)

    @property
    def global_watermark(self) -> int:
        """The next unassigned global node id."""
        with self._lock:
            return self._global_next

    @property
    def retired_span_count(self) -> int:
        """Spans kept only for in-flight translation (pruned by compact)."""
        with self._lock:
            return sum(len(spans) for spans in self._retired_spans)

    def live_counts(self) -> list[int]:
        """Live documents per shard — the scatter set's pruning input."""
        with self._lock:
            return [len(spans) for spans in self._live_spans]

    def shard_node_weights(self) -> list[int]:
        """Live node count per shard (the rebalance planner's currency)."""
        with self._lock:
            return [
                sum(placement.node_count for placement in spans)
                for spans in self._live_spans
            ]

    def skew(self) -> dict[str, object]:
        """Placement skew across shards — the auto-rebalance trigger input.

        ``ratio`` is the heaviest shard's node weight over the
        all-shard mean: 1.0 means perfectly flat, ``num_shards`` means
        everything sits on one shard.  An empty topology reports 1.0
        (nothing to balance).  Both ``live_counts`` and node weights
        ride along so watermark policies (and ``describe()`` readers)
        can consult either measure from one consistent snapshot — all
        three values come from a single critical section.
        """
        with self._lock:
            counts = [len(spans) for spans in self._live_spans]
            weights = [
                sum(placement.node_count for placement in spans)
                for spans in self._live_spans
            ]
        total = sum(weights)
        ratio = (max(weights) * self._num_shards / total) if total else 1.0
        return {
            "live_counts": counts,
            "node_weights": weights,
            "total_nodes": total,
            "ratio": ratio,
        }

    # ------------------------------------------------------------------
    # Routing mutations
    # ------------------------------------------------------------------
    def next_ordinal(self) -> int:
        """Allocate the arrival ordinal of one incoming document."""
        with self._lock:
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            return ordinal

    def reserve(
        self,
        name: str,
        ordinal: int,
        shard_index: int,
        local_start: int,
        node_count: int,
    ) -> DocumentPlacement:
        """Record one incoming document's routing entry.

        Allocates the document's global interval at the global watermark
        and registers the placement as live.  Called *before* the
        engine add lands (under the owning shard's add lock), so a
        concurrent reader can never see nodes without a span to
        translate them.
        """
        self._check_shard(shard_index)
        with self._lock:
            placement = DocumentPlacement(
                name=name,
                ordinal=ordinal,
                shard_index=shard_index,
                local_start=local_start,
                local_end=local_start + node_count,
                global_start=self._global_next,
                global_end=self._global_next + node_count,
            )
            self._global_next += node_count
            self._record_live(placement)
            self._epoch += 1
            return placement

    def retire(self, placement: DocumentPlacement) -> None:
        """Retire one live placement (document removed from its shard).

        The record leaves the live maps but its span keeps translating
        (from the retired list, off the hot path) until :meth:`compact`.
        """
        with self._lock:
            self._retire_live(placement)
            self._epoch += 1

    def record_move(
        self, placement: DocumentPlacement, target_shard: int, local_start: int
    ) -> DocumentPlacement:
        """Re-route one live document to ``target_shard`` atomically.

        Retires the source placement and records the target placement —
        same name, ordinal and **global interval**, new shard and local
        interval — in one critical section, so readers see either the
        old routing or the new, never both or neither.  Returns the new
        placement.
        """
        self._check_shard(target_shard)
        with self._lock:
            moved = dataclasses.replace(
                placement,
                shard_index=target_shard,
                local_start=local_start,
                local_end=local_start + placement.node_count,
            )
            self._retire_live(placement)
            self._record_live(moved)
            self.documents_moved += 1
            self._epoch += 1
            return moved

    def compact(self) -> int:
        """Prune every retired span out of the translation table.

        Returns how many spans were dropped.  After compaction, answers
        computed against pre-mutation shard snapshots (the consistent
        cut retired spans served) can no longer be translated — call
        this between query waves or after a rebalance, not under one.
        """
        with self._lock:
            pruned = sum(len(spans) for spans in self._retired_spans)
            if pruned:
                for spans in self._retired_spans:
                    spans.clear()
                self.spans_pruned += pruned
                self._epoch += 1
            self.compactions += 1
            return pruned

    def _record_live(self, placement: DocumentPlacement) -> None:
        if placement.ordinal in self._by_ordinal:
            raise DocumentError(
                f"ordinal {placement.ordinal} already has a live placement"
            )
        self._by_ordinal[placement.ordinal] = placement
        self._by_name.setdefault(placement.name, []).append(placement)
        bisect.insort(
            self._live_spans[placement.shard_index], placement, key=_local_start
        )

    def _retire_live(self, placement: DocumentPlacement) -> None:
        live = self._by_ordinal.get(placement.ordinal)
        if live is not placement:
            raise DocumentError(
                f"placement of {placement.name!r} (ordinal "
                f"{placement.ordinal}) is not live"
            )
        del self._by_ordinal[placement.ordinal]
        remaining = self._by_name[placement.name]
        remaining.remove(placement)
        if not remaining:
            del self._by_name[placement.name]
        self._live_spans[placement.shard_index].remove(placement)
        bisect.insort(
            self._retired_spans[placement.shard_index], placement, key=_local_start
        )
        self.spans_retired += 1

    def _check_shard(self, shard_index: int) -> None:
        if not 0 <= shard_index < self._num_shards:
            raise DocumentError(
                f"shard index {shard_index} outside [0, {self._num_shards})"
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def placements(self) -> list[DocumentPlacement]:
        """All live placements in arrival (ordinal) order."""
        with self._lock:
            return [self._by_ordinal[o] for o in sorted(self._by_ordinal)]

    def placements_for(self, name: str) -> list[DocumentPlacement]:
        """Every live placement recorded under one document name."""
        with self._lock:
            try:
                return list(self._by_name[name])
            except KeyError:
                raise DocumentError(f"no document named {name!r}") from None

    def resolve_unique(self, name: str) -> DocumentPlacement:
        """The single live placement of a uniquely named document."""
        placements = self.placements_for(name)
        if len(placements) > 1:
            raise DocumentError(
                f"document name {name!r} is ambiguous "
                f"({len(placements)} placements)"
            )
        return placements[0]

    def is_live(self, placement: DocumentPlacement) -> bool:
        """Whether this exact record is current routing state."""
        with self._lock:
            return self._by_ordinal.get(placement.ordinal) is placement

    def shards_for_documents(
        self, names: Sequence[str]
    ) -> dict[int, list[DocumentPlacement]]:
        """Shard index -> the named documents it holds (pruning map).

        Shards holding none of the named documents are absent — this is
        the scatter set for a document-scoped query.
        """
        targets: dict[int, list[DocumentPlacement]] = {}
        for name in names:
            for placement in self.placements_for(name):
                targets.setdefault(placement.shard_index, []).append(placement)
        return targets

    def global_spans_for(self, names: Sequence[str]) -> list[tuple[int, int]]:
        """The named documents' global id intervals (scoping filter)."""
        return [
            (placement.global_start, placement.global_end)
            for name in names
            for placement in self.placements_for(name)
        ]

    # ------------------------------------------------------------------
    # Id translation
    # ------------------------------------------------------------------
    def to_global(self, shard_index: int, local_id: int) -> int:
        """Translate one shard-local node id into the global id space."""
        self._check_shard(shard_index)
        if local_id == VIRTUAL_ROOT_ID:
            # Every shard's virtual root is the same global virtual root.
            return VIRTUAL_ROOT_ID
        with self._lock:
            span = self._covering_span(
                self._live_spans[shard_index], local_id
            ) or self._covering_span(self._retired_spans[shard_index], local_id)
            if span is not None:
                return span.global_start + (local_id - span.local_start)
        raise DocumentError(
            f"shard {shard_index} has no document covering local id {local_id}"
        )

    @staticmethod
    def _covering_span(
        spans: list[DocumentPlacement], local_id: int
    ) -> Optional[DocumentPlacement]:
        position = bisect.bisect_right(spans, local_id, key=_local_start) - 1
        if position >= 0:
            span = spans[position]
            if span.local_start <= local_id < span.local_end:
                return span
        return None

    def translate_sorted(
        self,
        shard_index: int,
        local_ids: Sequence[int],
        scope: Optional[Sequence[DocumentPlacement]] = None,
    ) -> list[int]:
        """Translate ascending shard-local ids in one pass (one lock).

        Query answers come back in ascending local id order, so a single
        merge-style walk over the shard's (also ascending) *live* spans
        translates the whole answer without a per-id bisect; only ids no
        live span covers (answers racing a removal or a move) take the
        retired-list binary-search slow path.  ``scope`` restricts the
        output to the given documents' intervals — ids outside them
        (other documents co-resident on the shard) are dropped, which is
        the filtering half of shard pruning.
        """
        self._check_shard(shard_index)
        allowed: Optional[set[int]] = None
        if scope is not None:
            allowed = {placement.ordinal for placement in scope}
        with self._lock:
            # Snapshot both span lists and translate outside the lock:
            # the walk is O(answer size) and must not become a serial
            # section across every query's gather phase.
            live = list(self._live_spans[shard_index])
            retired = list(self._retired_spans[shard_index])
        translated: list[int] = []
        position = 0
        for local_id in local_ids:
            if local_id == VIRTUAL_ROOT_ID:
                translated.append(VIRTUAL_ROOT_ID)
                continue
            while position < len(live) and local_id >= live[position].local_end:
                position += 1
            if position < len(live) and live[position].local_start <= local_id:
                span = live[position]
            else:
                span = self._covering_span(retired, local_id)
                if span is None:
                    raise DocumentError(
                        f"shard {shard_index} has no document covering "
                        f"local id {local_id} (ids must be ascending)"
                    )
            if allowed is not None and span.ordinal not in allowed:
                continue
            translated.append(span.global_start + (local_id - span.local_start))
        return translated

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Routing-table counters for ``describe()`` reports."""
        with self._lock:
            return {
                "epoch": self._epoch,
                "documents": len(self._by_ordinal),
                "documents_per_shard": [len(s) for s in self._live_spans],
                "global_watermark": self._global_next,
                "documents_moved": self.documents_moved,
                "retired_spans": sum(len(s) for s in self._retired_spans),
                "spans_retired": self.spans_retired,
                "spans_pruned": self.spans_pruned,
                "compactions": self.compactions,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardTopology(shards={self._num_shards}, "
            f"documents={self.document_count}, epoch={self.epoch})"
        )
