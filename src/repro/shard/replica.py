"""Shards, replica sets and read pickers: the engine-holding tier.

A :class:`Shard` is one partition of a
:class:`~repro.shard.collection.ShardedCollection` — a fully
independent vertical slice of the stack with its own
:class:`~repro.xmltree.document.XmlDatabase`,
:class:`~repro.storage.stats.StatsCollector`,
:class:`~repro.planner.evaluator.TwigQueryEngine` (with its own index
family) and :class:`~repro.service.QueryService` (with its own caches,
lock and generation fingerprint).

A :class:`ReplicatedShard` is N identical such engine instances behind
the same shard surface, for read scale-out past one engine per shard:

* **writes go through to every replica** — ``add_document`` adds the
  original to the primary and a :meth:`~repro.xmltree.document.Document.clone`
  to each secondary, ``remove_document`` removes the same id span from
  all of them, ``build_index`` builds everywhere.  Replicas receive the
  same documents in the same order, so they assign identical node ids
  and identical answers — which is what lets any replica serve any
  read;
* **reads fan out to one replica** — a pluggable
  :class:`ReadPicker` (:data:`READ_PICKERS`: round-robin,
  least-loaded, sticky) chooses which replica executes each query, and
  per-replica read counters make the fan-out observable;
* **costs merge through the one aggregation path** —
  :meth:`ReplicatedShard.stats_snapshot` folds every replica's
  collector together via :meth:`~repro.storage.stats.StatsCollector.merge`,
  so the N-fold write amplification of replication is priced honestly
  in the same currency as everything else;
* **failures are survived, not propagated** — every replica carries a
  health state machine (``healthy`` → ``suspect`` → ``dead``, driven by
  consecutive *infrastructure* ``execute`` failures; deterministic
  query errors (:data:`QUERY_ERRORS`) fail identically on every
  replica, so they re-raise to the caller without demoting anything),
  reads that fail are retried on the
  next healthy replica (:data:`~repro.storage.stats.StatsCollector`
  counters ``reads_retried`` / ``replicas_failed`` /
  ``replicas_revived`` record the activity), pickers only see healthy
  candidates, a dead replica is quarantined out of both the read pool
  and the write fan-out, and :meth:`ReplicatedShard.revive` re-syncs a
  quarantined replica by replaying the shard's write log — the
  primary's document sequence, adds *and* removals, so the rebuilt
  replica assigns exactly the primary's node ids.  Divergence (a
  replica whose watermark drifts from the primary's) is caught by the
  write-through alignment check and quarantined the same way.  The
  fault-injection module (:mod:`repro.faults`) exists to exercise all
  of this deterministically from tests and benches.

Both classes expose the same surface (``execute`` / ``add_document`` /
``remove_document`` / ``build_index`` / ``stats_snapshot`` / ...), so
the collection and the scatter-gather service route through a shard
without caring whether one engine or a replica set answers.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import Optional, Union

from ..errors import (
    DocumentError,
    IndexError_,
    PlanningError,
    QueryNotSupportedError,
    QueryParseError,
)
from ..obs import Telemetry
from ..planner.evaluator import QueryResult, TwigQueryEngine
from ..query.match import NaiveMatcher
from ..query.twig import TwigPattern
from ..service.base import AUTO_STRATEGY
from ..service.service import QueryService
from ..storage.stats import StatsCollector
from ..xmltree.document import Document, XmlDatabase

#: Deterministic, query-attributable error types.  Replicas hold the
#: same documents with the same ids and the same indexes, so a query
#: that raises one of these fails identically on *every* replica: the
#: failure says nothing about the replica's health, and retrying it
#: elsewhere cannot succeed.  :meth:`ReplicatedShard.execute` re-raises
#: them untouched — demoting on them would let one bad query, repeated
#: ``dead_after`` times, walk the whole replica set (primary included)
#: to dead and turn a caller mistake into a permanent shard read
#: outage.  Infrastructure faults (anything else a replica raises,
#: e.g. :class:`~repro.faults.InjectedFault`) still drive the health
#: machine.
QUERY_ERRORS = (
    QueryParseError,
    QueryNotSupportedError,
    PlanningError,
    IndexError_,
    DocumentError,
)


class Shard:
    """One partition: a private database, engine, stats and service."""

    def __init__(
        self,
        index: int,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
        use_kernels: bool = True,
    ) -> None:
        self.index = index
        self.db = XmlDatabase()
        self.stats = StatsCollector()
        self.engine = TwigQueryEngine(self.db, stats=self.stats, use_kernels=use_kernels)
        self.service = QueryService(
            self.engine,
            plan_cache_size=plan_cache_size,
            result_cache_size=result_cache_size,
            result_cache_ttl=result_cache_ttl,
            telemetry=telemetry,
        )
        #: The stack-wide observability hub; the collection passes one
        #: shared instance down, a standalone shard gets its service's.
        self.telemetry = self.service.telemetry
        #: Serializes writes *to this shard* (watermark read + engine add
        #: + span record must be atomic per shard), without making other
        #: shards' reads or writes wait.
        self.add_lock = threading.RLock()
        #: first node id -> live document, maintained by
        #: :meth:`add_document` / :meth:`remove_document` so
        #: :meth:`document_at` resolves in one dict probe instead of
        #: scanning ``db.documents`` on every move / remove-by-span.
        #: Ids are never reused, so a start id maps to at most one live
        #: document; mutated only on the write path, which the caller
        #: already serializes under :attr:`add_lock`.
        self._by_first_id: dict[int, Document] = {}

    @property
    def watermark(self) -> int:
        """The shard database's next unassigned node id."""
        return self.db.revision[1]

    @property
    def document_count(self) -> int:
        return len(self.db.documents)

    @property
    def replica_count(self) -> int:
        """A plain shard is its own single replica."""
        return 1

    # ------------------------------------------------------------------
    # The shard surface the collection and the scatter service route to
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        query_id: Optional[str] = None,
        **strategy_options,
    ) -> QueryResult:
        """One scattered query, through this shard's service."""
        return self.service.execute(
            query,
            strategy=strategy,
            use_result_cache=use_result_cache,
            query_id=query_id,
            **strategy_options,
        )

    def add_document(self, document: Document) -> Document:
        """Add one routed document through the shard's service."""
        added = self.service.add_document(document)
        self._by_first_id[added.first_id] = added
        return added

    def remove_document(self, ref: Union[Document, str]) -> Document:
        """Remove one document through the shard's service."""
        removed = self.service.remove_document(ref)
        self._by_first_id.pop(removed.first_id, None)
        return removed

    def build_index(self, name: str, **options):
        return self.service.build_index(name, **options)

    def ensure_indexes_for(self, strategy_name: str) -> None:
        self.engine.ensure_indexes_for(strategy_name)

    def invalidate(self, rebuilt: bool = True) -> None:
        self.service.invalidate(rebuilt=rebuilt)

    def generation(self) -> tuple:
        """The shard service's change fingerprint (lock-free read)."""
        return self.service.generation()

    def index_sizes_mb(self) -> dict[str, float]:
        return self.engine.index_sizes_mb()

    def oracle_ids(self, twig: TwigPattern) -> list[int]:
        """Index-free shard-local ground truth (differential testing)."""
        return NaiveMatcher(self.db).match_ids(twig)

    def document_at(self, local_start: int) -> Document:
        """The live document whose id span begins at ``local_start``.

        Spans are recorded at add time and ids are never reused, so the
        start id identifies a document unambiguously even when names
        collide — this is how a move resolves the object to detach.
        Resolution is one probe of the first-id index maintained by the
        write path (the churn differential tests pin that the index
        tracks add/remove exactly), not a scan of ``db.documents``.
        """
        document = self._by_first_id.get(local_start)
        if document is not None:
            return document
        raise DocumentError(
            f"shard {self.index} has no document starting at id {local_start}"
        )

    def note_move(self) -> None:
        """Charge one completed document move to this shard's collector."""
        self.stats.documents_moved += 1

    def stats_snapshot(self) -> dict[str, int]:
        return self.stats.snapshot()

    def stats_diff(self, before: dict[str, int]) -> dict[str, int]:
        return self.stats.diff(before)

    def service_report(self) -> dict[str, object]:
        return self.service.describe()

    def health_report(self) -> dict[str, object]:
        """Degenerate health report: a plain shard is its one healthy replica.

        Shaped like :meth:`ReplicatedShard.health_report` so the
        operations tier aggregates over a mixed collection without a
        replica case.
        """
        return {
            "replicas": 1,
            "states": [REPLICA_HEALTHY],
            "healthy": 1,
            "suspect": 0,
            "dead": 0,
            "reads_retried": 0,
            "replicas_failed": 0,
            "replicas_revived": 0,
        }

    def describe(self) -> dict[str, object]:
        """Shard-level size and cache counters."""
        return {
            "documents": self.document_count,
            "node_watermark": self.watermark,
            "indexes": sorted(self.engine.indexes),
            "replicas": self.replica_count,
            "service": self.service_report(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shard(index={self.index}, documents={self.document_count})"


# ----------------------------------------------------------------------
# Read pickers
# ----------------------------------------------------------------------
class ReadPicker:
    """Strategy interface: choose which replica serves one read.

    ``pick`` sees the in-flight read counts of the *eligible*
    candidates — the replicated shard filters out quarantined replicas
    before calling, so a picker only ever chooses among healthy ones —
    and a stable key for the query (its normalized text), and returns
    an index **into that candidate list**.  ``slots`` optionally names
    each candidate's stable replica slot id (ascending); stateful
    pickers use it to keep their rotation anchored to replicas rather
    than to positions in a candidate list whose membership shifts as
    replicas die, revive, or are excluded per-attempt.  Pickers may
    keep state (the round-robin cursor); the replicated shard
    serializes calls, so they need no locking of their own.
    """

    #: Registry name (also what ``describe()`` reports).
    name = "abstract"

    def pick(
        self,
        in_flight: list[int],
        query_key: str,
        slots: Optional[list[int]] = None,
    ) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RoundRobinPicker(ReadPicker):
    """Cycle through the replicas — maximally even read *counts*.

    The cursor rotates over **stable replica slot ids**, not positions
    in the candidate list: when a replica dies, revives, or sits out
    one attempt, the candidate list shifts but the rotation continues
    from the same point in slot space, so the spread stays even across
    health transitions instead of briefly favouring whichever replica
    inherited a shifted position.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def pick(
        self,
        in_flight: list[int],
        query_key: str,
        slots: Optional[list[int]] = None,
    ) -> int:
        if slots is None:
            slots = list(range(len(in_flight)))
        # First candidate slot at or after the cursor, wrapping in the
        # stable slot space; storing the cursor modulo the highest slot
        # id keeps it bounded over a long-lived shard instead of growing
        # by one per read forever.
        modulus = slots[-1] + 1
        position = min(
            range(len(slots)),
            key=lambda i: (slots[i] - self._cursor) % modulus,
        )
        self._cursor = (slots[position] + 1) % modulus
        return position


class LeastLoadedPicker(ReadPicker):
    """The replica with the fewest in-flight reads (lowest index ties)."""

    name = "least_loaded"

    def pick(
        self,
        in_flight: list[int],
        query_key: str,
        slots: Optional[list[int]] = None,
    ) -> int:
        return min(range(len(in_flight)), key=lambda i: (in_flight[i], i))


class StickyPicker(ReadPicker):
    """Affinity routing: the same query always lands on the same replica.

    Hashes the normalized query text (CRC32, like
    :class:`~repro.shard.placement.HashPlacement`), which partitions the
    distinct-query working set across the replicas — each replica's
    result cache holds only its slice, so a working set that overflows
    one replica's cache fits the replica set's aggregate capacity.
    """

    name = "sticky"

    def pick(
        self,
        in_flight: list[int],
        query_key: str,
        slots: Optional[list[int]] = None,
    ) -> int:
        return zlib.crc32(query_key.encode("utf-8")) % len(in_flight)


#: Registry of picker name -> picker class.
READ_PICKERS: dict[str, type[ReadPicker]] = {
    RoundRobinPicker.name: RoundRobinPicker,
    LeastLoadedPicker.name: LeastLoadedPicker,
    StickyPicker.name: StickyPicker,
}


def make_picker(picker: Union[str, ReadPicker]) -> ReadPicker:
    """Resolve a picker name or pass an instance through."""
    if isinstance(picker, ReadPicker):
        return picker
    try:
        return READ_PICKERS[picker]()
    except KeyError:
        raise DocumentError(
            f"unknown read picker {picker!r}; known: {sorted(READ_PICKERS)}"
        ) from None


# ----------------------------------------------------------------------
# Replica health
# ----------------------------------------------------------------------
#: The three states of the per-replica health machine.
REPLICA_HEALTHY = "healthy"
REPLICA_SUSPECT = "suspect"
REPLICA_DEAD = "dead"
REPLICA_STATES = (REPLICA_HEALTHY, REPLICA_SUSPECT, REPLICA_DEAD)


@dataclass
class ReplicaHealth:
    """Mutable health record for one replica slot.

    Driven by *consecutive* ``execute`` failures: ``suspect_after``
    failures demote healthy → suspect, ``dead_after`` demote suspect →
    dead (quarantine), and any success resets the streak and redeems a
    suspect back to healthy.  Dead is terminal until
    :meth:`ReplicatedShard.revive` replaces the slot.  Guarded by the
    replicated shard's read lock, like the in-flight counters.
    """

    state: str = REPLICA_HEALTHY
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    last_error: Optional[str] = None

    def describe(self) -> dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "successes": self.successes,
            "last_error": self.last_error,
        }


# ----------------------------------------------------------------------
# Replica sets
# ----------------------------------------------------------------------
class ReplicatedShard:
    """N identical engine instances behind one shard surface.

    Exposes the same surface as :class:`Shard`; ``db`` / ``engine`` /
    ``stats`` / ``service`` refer to the primary replica (replica 0) so
    code that introspects a shard keeps working — but reads should go
    through :meth:`execute`, which is where the picker fans them out.
    """

    #: Never compact the write log below this many entries — small
    #: shards never pay the compaction sweep.
    OPLOG_COMPACT_MIN = 64
    #: ... and only compact once the log exceeds this factor of the
    #: live corpus: the compacted log is at most ``2 * live + 1``
    #: entries, so each sweep buys at least Ω(live) further writes
    #: before the next one — O(1) amortized clones per write.
    OPLOG_COMPACT_FACTOR = 3

    def __init__(
        self,
        index: int,
        replicas: int = 2,
        read_picker: Union[str, ReadPicker] = "round_robin",
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl: Optional[float] = None,
        suspect_after: int = 1,
        dead_after: int = 3,
        probe_interval: int = 16,
        telemetry: Optional[Telemetry] = None,
        use_kernels: bool = True,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        if not 1 <= suspect_after <= dead_after:
            raise ValueError(
                f"need 1 <= suspect_after <= dead_after, got "
                f"{suspect_after} / {dead_after}"
            )
        if probe_interval < 1:
            raise ValueError(f"probe_interval must be positive: {probe_interval}")
        self.index = index
        self.picker = make_picker(read_picker)
        #: One hub for the whole replica set — carried in
        #: :attr:`_shard_options` so every replica (including the fresh
        #: one a :meth:`revive` builds) shares it.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._shard_options = dict(
            plan_cache_size=plan_cache_size,
            result_cache_size=result_cache_size,
            result_cache_ttl=result_cache_ttl,
            telemetry=self.telemetry,
            use_kernels=use_kernels,
        )
        self.replicas = [
            Shard(index, **self._shard_options) for _ in range(replicas)
        ]
        #: Consecutive read failures before healthy -> suspect / -> dead.
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        #: Every ``probe_interval``-th read is routed to a suspect
        #: replica (if one exists) instead of the picker's choice, so a
        #: suspect either redeems itself (success -> healthy) or
        #: finishes dying (failures accumulate to ``dead_after``)
        #: without a separate prober thread.
        self.probe_interval = probe_interval
        #: Writes hold this across the whole write-through so replicas
        #: never diverge in id space; reads never take it.
        self.add_lock = threading.RLock()
        self._read_lock = threading.Lock()
        self._in_flight = [0] * replicas
        self.replica_reads = [0] * replicas
        self._health = [ReplicaHealth() for _ in range(replicas)]
        self._reads_since_probe = 0
        #: Failover activity counters (``reads_retried`` /
        #: ``replicas_failed`` / ``replicas_revived``), merged into
        #: :meth:`stats_snapshot` next to the replicas' cost counters.
        self.ops_stats = StatsCollector()
        #: Counters of replicas retired by :meth:`revive`, folded in so
        #: shard totals never decrease when a slot is replaced.
        self._retired_stats = StatsCollector()
        #: The shard's write log: every committed write in order, as
        #: ``("add", template Document clone)`` /
        #: ``("remove", span start id)`` entries.  :meth:`revive`
        #: replays it — adds *and* removals, because removals leave id
        #: gaps a fresh add sequence would not reproduce — so a rebuilt
        #: replica assigns exactly the primary's node ids.  Once the
        #: log outgrows the live corpus it is compacted down to the
        #: live documents plus synthetic ``("gap", id count)`` entries
        #: (:meth:`_compact_oplog`), so a long-lived shard holds
        #: O(corpus) log memory, not O(write history) — under steady
        #: rebalance churn the two differ without bound.  Mutated under
        #: :attr:`add_lock` only.
        self._oplog: list[tuple[str, object]] = []

    @property
    def primary(self) -> Shard:
        return self.replicas[0]

    # Primary views, for introspection parity with a plain Shard.
    @property
    def db(self) -> XmlDatabase:
        return self.primary.db

    @property
    def engine(self) -> TwigQueryEngine:
        return self.primary.engine

    @property
    def stats(self) -> StatsCollector:
        return self.primary.stats

    @property
    def service(self) -> QueryService:
        return self.primary.service

    @property
    def watermark(self) -> int:
        return self.primary.watermark

    @property
    def document_count(self) -> int:
        return self.primary.document_count

    @property
    def replica_count(self) -> int:
        return len(self.replicas)

    # ------------------------------------------------------------------
    # Reads: fan out to one replica
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        query_id: Optional[str] = None,
        **strategy_options,
    ) -> QueryResult:
        """Route one read to a healthy replica, failing over on error.

        The picker chooses among the healthy candidates only (the
        in-flight counters it consults are maintained around the
        replica call); every replica holds the same documents with the
        same ids, so the answer is independent of the choice.  A
        replica whose ``execute`` raises an *infrastructure* fault is
        demoted through the health machine (suspect after
        :attr:`suspect_after` consecutive failures, quarantined dead
        after :attr:`dead_after`) and the read retries on the next
        candidate — the caller only sees such an error once every
        replica has been tried or quarantined.  Deterministic query
        errors (:data:`QUERY_ERRORS`) fail the same way everywhere, so
        they re-raise immediately, demoting nothing and retrying
        nowhere.  Each attempt runs under a ``replica`` span, so a
        failed-over read's trace shows the failed attempt (with its
        error) next to the retry that answered.
        """
        query_key = query if isinstance(query, str) else query.to_xpath()
        attempted: set[int] = set()
        while True:
            choice = self._pick_replica(query_key, attempted)
            result: Optional[QueryResult] = None
            with self.telemetry.span(
                "replica", shard=self.index, replica=choice
            ) as span:
                try:
                    result = self.replicas[choice].execute(
                        query,
                        strategy=strategy,
                        use_result_cache=use_result_cache,
                        query_id=query_id,
                        **strategy_options,
                    )
                except QUERY_ERRORS:
                    # The query itself is bad (parse/planning/lookup): every
                    # replica would fail it identically, so this says nothing
                    # about the replica that happened to serve it.
                    span.annotate(outcome="query-error")
                    raise
                except Exception as error:
                    attempted.add(choice)
                    span.annotate(outcome="failed", error=repr(error))
                    if not self._record_read_failure(choice, error, attempted):
                        raise
                else:
                    span.annotate(outcome="ok")
                finally:
                    self._finish_read(choice)
            if result is None:
                continue
            self._record_read_success(choice)
            return result

    def _pick_replica(self, query_key: str, exclude: set[int]) -> int:
        """Choose (and charge) the replica slot for one read attempt.

        Healthy candidates go to the picker; when none remain, suspect
        replicas serve as a degraded fallback — dead replicas are never
        eligible.  Every ``probe_interval``-th read is instead routed
        to the first suspect replica so suspects see enough traffic to
        redeem or die.  Raises when every replica is quarantined or
        already attempted.
        """
        with self._read_lock:
            healthy = [
                slot
                for slot, health in enumerate(self._health)
                if health.state == REPLICA_HEALTHY and slot not in exclude
            ]
            suspect = [
                slot
                for slot, health in enumerate(self._health)
                if health.state == REPLICA_SUSPECT and slot not in exclude
            ]
            choice: Optional[int] = None
            if healthy and suspect:
                self._reads_since_probe += 1
                if self._reads_since_probe >= self.probe_interval:
                    self._reads_since_probe = 0
                    choice = suspect[0]
            if choice is None:
                candidates = healthy or suspect
                if not candidates:
                    raise DocumentError(
                        f"shard {self.index} has no live replica left to "
                        f"serve reads (all {len(self.replicas)} quarantined "
                        f"or failed this query)"
                    )
                position = self.picker.pick(
                    [self._in_flight[slot] for slot in candidates],
                    query_key,
                    slots=candidates,
                )
                if not 0 <= position < len(candidates):
                    raise DocumentError(
                        f"read picker {self.picker.name!r} returned position "
                        f"{position} outside [0, {len(candidates)})"
                    )
                choice = candidates[position]
            self._in_flight[choice] += 1
            self.replica_reads[choice] += 1
            return choice

    def _finish_read(self, choice: int) -> None:
        with self._read_lock:
            self._in_flight[choice] -= 1

    def _record_read_success(self, choice: int) -> None:
        """Reset the failure streak; a success redeems a suspect."""
        with self._read_lock:
            health = self._health[choice]
            health.consecutive_failures = 0
            health.successes += 1
            if health.state == REPLICA_SUSPECT:
                health.state = REPLICA_HEALTHY
                self.telemetry.event(
                    "replica-health",
                    shard=self.index,
                    replica=choice,
                    state=REPLICA_HEALTHY,
                    reason="suspect redeemed by successful read",
                )

    def _record_read_failure(
        self, choice: int, error: Exception, attempted: set[int]
    ) -> bool:
        """Demote the failed replica; True when the read should retry."""
        with self._read_lock:
            health = self._health[choice]
            health.consecutive_failures += 1
            health.failures += 1
            health.last_error = repr(error)
            if (
                health.state == REPLICA_HEALTHY
                and health.consecutive_failures >= self.suspect_after
            ):
                health.state = REPLICA_SUSPECT
                self.telemetry.event(
                    "replica-health",
                    shard=self.index,
                    replica=choice,
                    state=REPLICA_SUSPECT,
                    error=repr(error),
                )
            if (
                health.state != REPLICA_DEAD
                and health.consecutive_failures >= self.dead_after
            ):
                health.state = REPLICA_DEAD
                self.ops_stats.replicas_failed += 1
                self.telemetry.event(
                    "replica-quarantined",
                    shard=self.index,
                    replica=choice,
                    reason=f"read failures reached dead_after: {error!r}",
                )
            retry = any(
                slot not in attempted and health.state != REPLICA_DEAD
                for slot, health in enumerate(self._health)
            )
            if retry:
                self.ops_stats.reads_retried += 1
            return retry

    def oracle_ids(self, twig: TwigPattern) -> list[int]:
        return self.primary.oracle_ids(twig)

    # ------------------------------------------------------------------
    # Writes: through to every replica
    # ------------------------------------------------------------------
    def add_document(self, document: Document) -> Document:
        """Write one document through to every live replica.

        The primary takes ``document`` itself; each live secondary
        takes a :meth:`~repro.xmltree.document.Document.clone` (trees
        cannot be shared between databases).  Identical add order means
        identical node ids on every replica.  The primary is the source
        of truth: its write always lands (and is logged for
        :meth:`revive`); a secondary whose write fails is quarantined
        dead — to be re-synced later — rather than unwinding a write
        the primary already committed.  Dead secondaries are skipped
        entirely; they catch up on revive.
        """
        with self.add_lock:
            added = self.primary.add_document(document)
            self._oplog.append(("add", document.clone()))
            for position, replica in enumerate(self.replicas):
                if position == 0 or self._is_dead(position):
                    continue
                try:
                    replica.add_document(document.clone())
                except Exception as error:  # repro-lint: ignore[RPR005] -- the primary write already landed; a failing secondary is quarantined for revive, not unwound
                    self._quarantine(
                        position, f"write-through add failed: {error!r}"
                    )
            self._check_alignment()
            self._maybe_compact_oplog()
            return added

    def remove_document(self, ref: Union[Document, str]) -> Document:
        """Remove the same document (by its id span) from every live replica.

        Mirrors :meth:`add_document`: the primary's removal is
        authoritative and logged, dead secondaries are skipped, and a
        secondary that fails its removal is quarantined for revive.
        """
        with self.add_lock:
            primary_doc = self.primary.db.resolve_document(ref)
            span_start = primary_doc.first_id
            removed = self.primary.remove_document(primary_doc)
            self._oplog.append(("remove", span_start))
            for position, replica in enumerate(self.replicas):
                if position == 0 or self._is_dead(position):
                    continue
                try:
                    replica.remove_document(replica.document_at(span_start))
                except Exception as error:  # repro-lint: ignore[RPR005] -- the primary removal already landed; a failing secondary is quarantined for revive, not unwound
                    self._quarantine(
                        position, f"write-through remove failed: {error!r}"
                    )
            self._check_alignment()
            self._maybe_compact_oplog()
            return removed

    def build_index(self, name: str, **options):
        """Build one index on every live replica (dead ones rebuild on revive)."""
        with self.add_lock:
            built = self.primary.build_index(name, **options)
            for position, replica in enumerate(self.replicas):
                if position == 0 or self._is_dead(position):
                    continue
                replica.build_index(name, **options)
            return built

    def ensure_indexes_for(self, strategy_name: str) -> None:
        with self.add_lock:
            for position, replica in enumerate(self.replicas):
                if position != 0 and self._is_dead(position):
                    continue
                replica.ensure_indexes_for(strategy_name)

    def invalidate(self, rebuilt: bool = True) -> None:
        """Invalidate every replica's caches, atomically with writes.

        Holds :attr:`add_lock` so the sweep cannot interleave with a
        write-through: without it, replica 0 could be invalidated, a
        concurrent ``add_document`` bump every replica's generation,
        and the tail replicas then be invalidated again — leaving the
        set at inconsistent cache generations.
        """
        with self.add_lock:
            for replica in self.replicas:
                replica.invalidate(rebuilt=rebuilt)

    def generation(self) -> tuple:
        """The primary's change fingerprint (replicas track it in lock-step)."""
        return self.primary.generation()

    def document_at(self, local_start: int) -> Document:
        return self.primary.document_at(local_start)

    def note_move(self) -> None:
        """Charge one completed move once (to the primary's collector)."""
        self.primary.note_move()

    def _is_dead(self, position: int) -> bool:
        with self._read_lock:
            return self._health[position].state == REPLICA_DEAD

    def _quarantine(self, position: int, reason: str) -> None:
        """Mark one secondary dead (idempotent); never the primary."""
        if position == 0:
            raise DocumentError(
                f"shard {self.index}: the primary replica cannot be "
                f"quarantined ({reason})"
            )
        with self._read_lock:
            health = self._health[position]
            if health.state != REPLICA_DEAD:
                health.state = REPLICA_DEAD
                health.last_error = reason
                self.ops_stats.replicas_failed += 1
                self.telemetry.event(
                    "replica-quarantined",
                    shard=self.index,
                    replica=position,
                    reason=reason,
                )

    def _check_alignment(self) -> None:
        """Quarantine any live secondary whose watermark left the primary's.

        The primary is the reference: a secondary reporting a different
        next-id watermark has diverged (it would assign different node
        ids and serve wrong answers silently), so it is pulled from the
        read pool and the write fan-out until revived — self-driving
        containment instead of failing the write that detected it.
        """
        reference = self.primary.watermark
        for position, replica in enumerate(self.replicas):
            if position == 0 or self._is_dead(position):
                continue
            watermark = replica.watermark
            if watermark != reference:
                self._quarantine(
                    position,
                    f"diverged: watermark {watermark} != primary {reference}",
                )

    # ------------------------------------------------------------------
    # Write-log compaction
    # ------------------------------------------------------------------
    def _maybe_compact_oplog(self) -> None:
        """Compact the write log once it outgrows the live corpus.

        Without this the log retains a clone of every document ever
        added: with rebalancing enabled every move appends an add-clone
        to the target shard and a remove entry to the source, so memory
        would grow without bound even at constant corpus size.  Called
        under :attr:`add_lock` by the write path.
        """
        threshold = max(
            self.OPLOG_COMPACT_MIN,
            self.OPLOG_COMPACT_FACTOR * (self.primary.document_count + 1),
        )
        if len(self._oplog) >= threshold:
            self._compact_oplog()

    def _compact_oplog(self) -> None:
        """Collapse the log to the live documents plus id-gap entries.

        Replaying the compacted log reproduces exactly the state the
        full history would: each live document re-added in first-id
        order, with ``("gap", count)`` entries advancing the id
        watermark across the ranges that removals (and the removal
        halves of moves) retired — so :meth:`revive` still rebuilds a
        replica to exactly the primary's node ids.  At most
        ``2 * live + 1`` entries remain, which is strictly below the
        compaction threshold, so the log stays bounded by the corpus
        size however long the shard lives.
        """
        entries: list[tuple[str, object]] = []
        cursor = 1  # a fresh XmlDatabase numbers from id 1
        for document in sorted(
            self.primary.db.documents, key=lambda doc: doc.first_id
        ):
            if document.first_id > cursor:
                entries.append(("gap", document.first_id - cursor))
            entries.append(("add", document.clone()))
            cursor = document.end_id
        if self.primary.watermark > cursor:
            entries.append(("gap", self.primary.watermark - cursor))
        self._oplog = entries

    # ------------------------------------------------------------------
    # Revive: re-sync a quarantined replica from the write log
    # ------------------------------------------------------------------
    def revive(self, replica_index: int) -> Shard:
        """Rebuild one replica slot by replaying the shard's write log.

        A fresh :class:`Shard` replays every committed write in order —
        adds *and* removals (or, after compaction, the live documents
        plus synthetic id-gap entries), because removals leave id gaps
        that a replay of only the surviving documents would not
        reproduce — so
        it assigns exactly the primary's node ids; the primary's built
        indexes are then rebuilt from their recorded build options.
        The slot is swapped in under both locks and its health reset to
        healthy; a fault injector wrapping the old replica is discarded
        with it.  The retired replica's cost counters fold into
        :meth:`stats_snapshot` so shard totals never decrease.  Works
        on any slot (a read-dead primary re-syncs from the log the same
        way).  Counted in ``replicas_revived``.
        """
        with self.add_lock:
            if not 0 <= replica_index < len(self.replicas):
                raise DocumentError(
                    f"shard {self.index} has no replica {replica_index} "
                    f"(replicas: {len(self.replicas)})"
                )
            fresh = Shard(self.index, **self._shard_options)
            for action, payload in self._oplog:
                if action == "add":
                    fresh.add_document(payload.clone())
                elif action == "gap":
                    # A compacted stretch of retired ids: advance the
                    # watermark without materializing the removed
                    # documents (see :meth:`_compact_oplog`).
                    fresh.db.skip_ids(payload)
                else:
                    fresh.remove_document(fresh.document_at(payload))
            for name in sorted(self.primary.engine.indexes):
                fresh.build_index(
                    name, **self.primary.engine.build_options.get(name, {})
                )
            if fresh.watermark != self.primary.watermark:
                raise DocumentError(
                    f"revive of shard {self.index} replica {replica_index} "
                    f"replayed to watermark {fresh.watermark}, primary is "
                    f"at {self.primary.watermark}"
                )
            with self._read_lock:
                retired = self.replicas[replica_index]
                self._retired_stats.merge(retired.stats)
                self.replicas[replica_index] = fresh
                self._health[replica_index] = ReplicaHealth()
                self.ops_stats.replicas_revived += 1
            self.telemetry.event(
                "replica-revived",
                shard=self.index,
                replica=replica_index,
                replayed=len(self._oplog),
                watermark=fresh.watermark,
            )
            return fresh

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def index_sizes_mb(self) -> dict[str, float]:
        """Primary's index sizes (every replica's copy is identical)."""
        return self.primary.index_sizes_mb()

    def stats_snapshot(self) -> dict[str, int]:
        """All replicas' counters folded through ``StatsCollector.merge``.

        Includes the shard's own failover activity counters
        (:attr:`ops_stats`) and the retired counters of replicas
        replaced by :meth:`revive`, so operations activity rides the
        same snapshot / merge / diff machinery as engine cost and the
        merged totals never decrease across a revive.
        """
        return (
            StatsCollector()
            .merge(
                self.ops_stats,
                self._retired_stats,
                *(replica.stats for replica in self.replicas),
            )
            .snapshot()
        )

    def stats_diff(self, before: dict[str, int]) -> dict[str, int]:
        now = self.stats_snapshot()
        return {key: now.get(key, 0) - value for key, value in before.items()}

    def service_report(self) -> dict[str, object]:
        """Per-replica service reports summed into one shard report.

        Counter values (and nested counter dicts) sum across replicas;
        non-numeric leaves (TTL configuration, hit rates) are taken
        from the primary.  The summed shape matches a plain shard's
        report, so collection-level aggregation needs no replica case.
        """
        reports = [replica.service_report() for replica in self.replicas]
        return _sum_reports(reports)

    def health_report(self) -> dict[str, object]:
        """Health states and failover activity of the replica set."""
        with self._read_lock:
            states = [health.state for health in self._health]
            detail = [health.describe() for health in self._health]
            return {
                "replicas": len(self.replicas),
                "states": states,
                "healthy": states.count(REPLICA_HEALTHY),
                "suspect": states.count(REPLICA_SUSPECT),
                "dead": states.count(REPLICA_DEAD),
                "reads_retried": self.ops_stats.reads_retried,
                "replicas_failed": self.ops_stats.replicas_failed,
                "replicas_revived": self.ops_stats.replicas_revived,
                "detail": detail,
            }

    def describe(self) -> dict[str, object]:
        return {
            "documents": self.document_count,
            "node_watermark": self.watermark,
            "indexes": sorted(self.engine.indexes),
            "replicas": self.replica_count,
            "read_picker": self.picker.name,
            "replica_reads": list(self.replica_reads),
            "health": self.health_report(),
            "service": self.service_report(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicatedShard(index={self.index}, "
            f"replicas={self.replica_count}, "
            f"documents={self.document_count})"
        )


#: Report keys that are configuration, not additive counters: identical
#: across replicas (or meaningless to sum), so the summed report
#: carries the primary's value.
_NON_ADDITIVE_KEYS = frozenset({"max_size", "ttl_seconds"})


def _sum_reports(reports: list) -> dict[str, object]:
    """Key-wise recursive sum of homogeneous counter reports.

    Ints and floats sum, nested dicts recurse (with key union, so
    per-strategy count maps merge), configuration keys
    (:data:`_NON_ADDITIVE_KEYS`) and non-numeric leaves come from the
    first report — booleans count as non-numeric configuration here.
    Ratios are **recomputed** from the summed counters, never copied:
    the primary's ``hit_rate`` is not the replica set's whenever
    replicas diverge in traffic (a sticky picker guarantees they do).
    """
    merged: dict[str, object] = {}
    for key in {k for report in reports for k in report}:
        values = [report[key] for report in reports if key in report]
        first = values[0]
        if key == "hit_rate":
            continue  # recomputed below from the summed hits/misses
        if key in _NON_ADDITIVE_KEYS:
            merged[key] = first
        elif isinstance(first, dict):
            merged[key] = _sum_reports(values)
        elif isinstance(first, (int, float)) and not isinstance(first, bool):
            merged[key] = sum(values)
        else:
            merged[key] = first
    if any("hit_rate" in report for report in reports):
        hits = merged.get("hits", 0)
        total = hits + merged.get("misses", 0)
        merged["hit_rate"] = hits / total if total else 0.0
    return merged
