"""Shards, replica sets and read pickers: the engine-holding tier.

A :class:`Shard` is one partition of a
:class:`~repro.shard.collection.ShardedCollection` — a fully
independent vertical slice of the stack with its own
:class:`~repro.xmltree.document.XmlDatabase`,
:class:`~repro.storage.stats.StatsCollector`,
:class:`~repro.planner.evaluator.TwigQueryEngine` (with its own index
family) and :class:`~repro.service.QueryService` (with its own caches,
lock and generation fingerprint).

A :class:`ReplicatedShard` is N identical such engine instances behind
the same shard surface, for read scale-out past one engine per shard:

* **writes go through to every replica** — ``add_document`` adds the
  original to the primary and a :meth:`~repro.xmltree.document.Document.clone`
  to each secondary, ``remove_document`` removes the same id span from
  all of them, ``build_index`` builds everywhere.  Replicas receive the
  same documents in the same order, so they assign identical node ids
  and identical answers — which is what lets any replica serve any
  read;
* **reads fan out to one replica** — a pluggable
  :class:`ReadPicker` (:data:`READ_PICKERS`: round-robin,
  least-loaded, sticky) chooses which replica executes each query, and
  per-replica read counters make the fan-out observable;
* **costs merge through the one aggregation path** —
  :meth:`ReplicatedShard.stats_snapshot` folds every replica's
  collector together via :meth:`~repro.storage.stats.StatsCollector.merge`,
  so the N-fold write amplification of replication is priced honestly
  in the same currency as everything else.

Both classes expose the same surface (``execute`` / ``add_document`` /
``remove_document`` / ``build_index`` / ``stats_snapshot`` / ...), so
the collection and the scatter-gather service route through a shard
without caring whether one engine or a replica set answers.
"""

from __future__ import annotations

import threading
import zlib
from typing import Optional, Union

from ..errors import DocumentError
from ..planner.evaluator import QueryResult, TwigQueryEngine
from ..query.match import NaiveMatcher
from ..query.twig import TwigPattern
from ..service.base import AUTO_STRATEGY
from ..service.service import QueryService
from ..storage.stats import StatsCollector
from ..xmltree.document import Document, XmlDatabase


class Shard:
    """One partition: a private database, engine, stats and service."""

    def __init__(
        self,
        index: int,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl: Optional[float] = None,
    ) -> None:
        self.index = index
        self.db = XmlDatabase()
        self.stats = StatsCollector()
        self.engine = TwigQueryEngine(self.db, stats=self.stats)
        self.service = QueryService(
            self.engine,
            plan_cache_size=plan_cache_size,
            result_cache_size=result_cache_size,
            result_cache_ttl=result_cache_ttl,
        )
        #: Serializes writes *to this shard* (watermark read + engine add
        #: + span record must be atomic per shard), without making other
        #: shards' reads or writes wait.
        self.add_lock = threading.RLock()

    @property
    def watermark(self) -> int:
        """The shard database's next unassigned node id."""
        return self.db.revision[1]

    @property
    def document_count(self) -> int:
        return len(self.db.documents)

    @property
    def replica_count(self) -> int:
        """A plain shard is its own single replica."""
        return 1

    # ------------------------------------------------------------------
    # The shard surface the collection and the scatter service route to
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        **strategy_options,
    ) -> QueryResult:
        """One scattered query, through this shard's service."""
        return self.service.execute(
            query,
            strategy=strategy,
            use_result_cache=use_result_cache,
            **strategy_options,
        )

    def add_document(self, document: Document) -> Document:
        """Add one routed document through the shard's service."""
        return self.service.add_document(document)

    def remove_document(self, ref: Union[Document, str]) -> Document:
        """Remove one document through the shard's service."""
        return self.service.remove_document(ref)

    def build_index(self, name: str, **options):
        return self.service.build_index(name, **options)

    def ensure_indexes_for(self, strategy_name: str) -> None:
        self.engine.ensure_indexes_for(strategy_name)

    def invalidate(self, rebuilt: bool = True) -> None:
        self.service.invalidate(rebuilt=rebuilt)

    def index_sizes_mb(self) -> dict[str, float]:
        return self.engine.index_sizes_mb()

    def oracle_ids(self, twig: TwigPattern) -> list[int]:
        """Index-free shard-local ground truth (differential testing)."""
        return NaiveMatcher(self.db).match_ids(twig)

    def document_at(self, local_start: int) -> Document:
        """The live document whose id span begins at ``local_start``.

        Spans are recorded at add time and ids are never reused, so the
        start id identifies a document unambiguously even when names
        collide — this is how a move resolves the object to detach.
        """
        for document in self.db.documents:
            if document.first_id == local_start:
                return document
        raise DocumentError(
            f"shard {self.index} has no document starting at id {local_start}"
        )

    def note_move(self) -> None:
        """Charge one completed document move to this shard's collector."""
        self.stats.documents_moved += 1

    def stats_snapshot(self) -> dict[str, int]:
        return self.stats.snapshot()

    def stats_diff(self, before: dict[str, int]) -> dict[str, int]:
        return self.stats.diff(before)

    def service_report(self) -> dict[str, object]:
        return self.service.describe()

    def describe(self) -> dict[str, object]:
        """Shard-level size and cache counters."""
        return {
            "documents": self.document_count,
            "node_watermark": self.watermark,
            "indexes": sorted(self.engine.indexes),
            "replicas": self.replica_count,
            "service": self.service_report(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shard(index={self.index}, documents={self.document_count})"


# ----------------------------------------------------------------------
# Read pickers
# ----------------------------------------------------------------------
class ReadPicker:
    """Strategy interface: choose which replica serves one read.

    ``pick`` sees the per-replica in-flight read counts and a stable
    key for the query (its normalized text) and returns a replica
    index.  Pickers may keep state (the round-robin cursor); the
    replicated shard serializes calls, so they need no locking of
    their own.
    """

    #: Registry name (also what ``describe()`` reports).
    name = "abstract"

    def pick(self, in_flight: list[int], query_key: str) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RoundRobinPicker(ReadPicker):
    """Cycle through the replicas — maximally even read *counts*."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def pick(self, in_flight: list[int], query_key: str) -> int:
        choice = self._cursor % len(in_flight)
        self._cursor += 1
        return choice


class LeastLoadedPicker(ReadPicker):
    """The replica with the fewest in-flight reads (lowest index ties)."""

    name = "least_loaded"

    def pick(self, in_flight: list[int], query_key: str) -> int:
        return min(range(len(in_flight)), key=lambda i: (in_flight[i], i))


class StickyPicker(ReadPicker):
    """Affinity routing: the same query always lands on the same replica.

    Hashes the normalized query text (CRC32, like
    :class:`~repro.shard.placement.HashPlacement`), which partitions the
    distinct-query working set across the replicas — each replica's
    result cache holds only its slice, so a working set that overflows
    one replica's cache fits the replica set's aggregate capacity.
    """

    name = "sticky"

    def pick(self, in_flight: list[int], query_key: str) -> int:
        return zlib.crc32(query_key.encode("utf-8")) % len(in_flight)


#: Registry of picker name -> picker class.
READ_PICKERS: dict[str, type[ReadPicker]] = {
    RoundRobinPicker.name: RoundRobinPicker,
    LeastLoadedPicker.name: LeastLoadedPicker,
    StickyPicker.name: StickyPicker,
}


def make_picker(picker: Union[str, ReadPicker]) -> ReadPicker:
    """Resolve a picker name or pass an instance through."""
    if isinstance(picker, ReadPicker):
        return picker
    try:
        return READ_PICKERS[picker]()
    except KeyError:
        raise DocumentError(
            f"unknown read picker {picker!r}; known: {sorted(READ_PICKERS)}"
        ) from None


# ----------------------------------------------------------------------
# Replica sets
# ----------------------------------------------------------------------
class ReplicatedShard:
    """N identical engine instances behind one shard surface.

    Exposes the same surface as :class:`Shard`; ``db`` / ``engine`` /
    ``stats`` / ``service`` refer to the primary replica (replica 0) so
    code that introspects a shard keeps working — but reads should go
    through :meth:`execute`, which is where the picker fans them out.
    """

    def __init__(
        self,
        index: int,
        replicas: int = 2,
        read_picker: Union[str, ReadPicker] = "round_robin",
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl: Optional[float] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        self.index = index
        self.picker = make_picker(read_picker)
        self.replicas = [
            Shard(
                index,
                plan_cache_size=plan_cache_size,
                result_cache_size=result_cache_size,
                result_cache_ttl=result_cache_ttl,
            )
            for _ in range(replicas)
        ]
        #: Writes hold this across the whole write-through so replicas
        #: never diverge in id space; reads never take it.
        self.add_lock = threading.RLock()
        self._read_lock = threading.Lock()
        self._in_flight = [0] * replicas
        self.replica_reads = [0] * replicas

    @property
    def primary(self) -> Shard:
        return self.replicas[0]

    # Primary views, for introspection parity with a plain Shard.
    @property
    def db(self) -> XmlDatabase:
        return self.primary.db

    @property
    def engine(self) -> TwigQueryEngine:
        return self.primary.engine

    @property
    def stats(self) -> StatsCollector:
        return self.primary.stats

    @property
    def service(self) -> QueryService:
        return self.primary.service

    @property
    def watermark(self) -> int:
        return self.primary.watermark

    @property
    def document_count(self) -> int:
        return self.primary.document_count

    @property
    def replica_count(self) -> int:
        return len(self.replicas)

    # ------------------------------------------------------------------
    # Reads: fan out to one replica
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        **strategy_options,
    ) -> QueryResult:
        """Route one read to the picker's replica.

        The in-flight counters the least-loaded picker consults are
        maintained around the replica call; every replica holds the
        same documents with the same ids, so the answer is independent
        of the choice.
        """
        query_key = query if isinstance(query, str) else query.to_xpath()
        with self._read_lock:
            choice = self.picker.pick(list(self._in_flight), query_key)
            if not 0 <= choice < len(self.replicas):
                raise DocumentError(
                    f"read picker {self.picker.name!r} returned replica "
                    f"{choice} outside [0, {len(self.replicas)})"
                )
            self._in_flight[choice] += 1
            self.replica_reads[choice] += 1
        try:
            return self.replicas[choice].execute(
                query,
                strategy=strategy,
                use_result_cache=use_result_cache,
                **strategy_options,
            )
        finally:
            with self._read_lock:
                self._in_flight[choice] -= 1

    def oracle_ids(self, twig: TwigPattern) -> list[int]:
        return self.primary.oracle_ids(twig)

    # ------------------------------------------------------------------
    # Writes: through to every replica
    # ------------------------------------------------------------------
    def add_document(self, document: Document) -> Document:
        """Write one document through to every replica.

        The primary takes ``document`` itself; each secondary takes a
        :meth:`~repro.xmltree.document.Document.clone` (trees cannot be
        shared between databases).  Identical add order means identical
        node ids on every replica — asserted here, because a divergent
        replica would serve wrong answers silently.
        """
        with self.add_lock:
            added = self.primary.add_document(document)
            for replica in self.replicas[1:]:
                replica.add_document(document.clone())
            self._check_alignment()
            return added

    def remove_document(self, ref: Union[Document, str]) -> Document:
        """Remove the same document (by its id span) from every replica."""
        with self.add_lock:
            primary_doc = self.primary.db.resolve_document(ref)
            span_start = primary_doc.first_id
            removed = self.primary.remove_document(primary_doc)
            for replica in self.replicas[1:]:
                replica.remove_document(replica.document_at(span_start))
            self._check_alignment()
            return removed

    def build_index(self, name: str, **options):
        with self.add_lock:
            built = [
                replica.build_index(name, **options) for replica in self.replicas
            ]
            return built[0]

    def ensure_indexes_for(self, strategy_name: str) -> None:
        with self.add_lock:
            for replica in self.replicas:
                replica.ensure_indexes_for(strategy_name)

    def invalidate(self, rebuilt: bool = True) -> None:
        for replica in self.replicas:
            replica.invalidate(rebuilt=rebuilt)

    def document_at(self, local_start: int) -> Document:
        return self.primary.document_at(local_start)

    def note_move(self) -> None:
        """Charge one completed move once (to the primary's collector)."""
        self.primary.note_move()

    def _check_alignment(self) -> None:
        watermarks = {replica.watermark for replica in self.replicas}
        if len(watermarks) != 1:
            raise DocumentError(
                f"replicas of shard {self.index} diverged: "
                f"watermarks {sorted(watermarks)}"
            )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def index_sizes_mb(self) -> dict[str, float]:
        """Primary's index sizes (every replica's copy is identical)."""
        return self.primary.index_sizes_mb()

    def stats_snapshot(self) -> dict[str, int]:
        """All replicas' counters folded through ``StatsCollector.merge``."""
        return (
            StatsCollector()
            .merge(*(replica.stats for replica in self.replicas))
            .snapshot()
        )

    def stats_diff(self, before: dict[str, int]) -> dict[str, int]:
        now = self.stats_snapshot()
        return {key: now.get(key, 0) - value for key, value in before.items()}

    def service_report(self) -> dict[str, object]:
        """Per-replica service reports summed into one shard report.

        Counter values (and nested counter dicts) sum across replicas;
        non-numeric leaves (TTL configuration, hit rates) are taken
        from the primary.  The summed shape matches a plain shard's
        report, so collection-level aggregation needs no replica case.
        """
        reports = [replica.service_report() for replica in self.replicas]
        return _sum_reports(reports)

    def describe(self) -> dict[str, object]:
        return {
            "documents": self.document_count,
            "node_watermark": self.watermark,
            "indexes": sorted(self.engine.indexes),
            "replicas": self.replica_count,
            "read_picker": self.picker.name,
            "replica_reads": list(self.replica_reads),
            "service": self.service_report(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicatedShard(index={self.index}, "
            f"replicas={self.replica_count}, "
            f"documents={self.document_count})"
        )


#: Report keys that are configuration or ratios, not additive counters:
#: identical across replicas (or meaningless to sum), so the summed
#: report carries the primary's value.
_NON_ADDITIVE_KEYS = frozenset({"max_size", "ttl_seconds", "hit_rate"})


def _sum_reports(reports: list) -> dict[str, object]:
    """Key-wise recursive sum of homogeneous counter reports.

    Ints and floats sum, nested dicts recurse (with key union, so
    per-strategy count maps merge), configuration keys
    (:data:`_NON_ADDITIVE_KEYS`) and non-numeric leaves come from the
    first report — booleans count as non-numeric configuration here.
    """
    merged: dict[str, object] = {}
    for key in {k for report in reports for k in report}:
        values = [report[key] for report in reports if key in report]
        first = values[0]
        if key in _NON_ADDITIVE_KEYS:
            merged[key] = first
        elif isinstance(first, dict):
            merged[key] = _sum_reports(values)
        elif isinstance(first, (int, float)) and not isinstance(first, bool):
            merged[key] = sum(values)
        else:
            merged[key] = first
    return merged
