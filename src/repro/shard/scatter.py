"""Scatter pools: how per-shard query legs map onto worker threads.

:class:`~repro.shard.service.ShardedQueryService` evaluates one query
by submitting one *leg* per relevant shard and gathering the partial
answers.  Under a single caller any thread pool does; under the
concurrent front door (:mod:`repro.frontdoor`) many queries scatter at
once and the mapping of legs to threads decides whether the shards
actually stay busy.  Two pools implement the same tiny surface
(:meth:`ScatterPool.submit` / :meth:`ScatterPool.shutdown`):

* :class:`PooledScatterPool` — the legacy shape: one shared
  ``ThreadPoolExecutor`` with ``num_shards`` workers.  Legs from all
  queries enter one FIFO queue; a worker that dequeues a leg for a
  shard whose service lock is still held by an earlier leg *blocks on
  that lock* while other shards sit idle with queued work
  (head-of-line blocking).  Kept as the explicit baseline the
  front-door bench measures against.

* :class:`PipelinedScatterPool` — one single-worker lane per shard
  (plus one lane per extra replica, whose reads really can run in
  parallel because each replica has its own service lock).  A leg
  queues on *its shard's* lane, so legs from different concurrent
  queries interleave per shard in FIFO order and every shard is busy
  whenever any query has work for it; no worker ever blocks on a
  foreign shard's lock.  This is the cross-query pipelining the ISSUE
  calls for, and the default.

Both pools hand back ordinary :class:`concurrent.futures.Future`
objects; the service gathers them as-completed and cancels outstanding
legs on the first error (see
:meth:`~repro.shard.service.ShardedQueryService._scatter`).
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence, Union

__all__ = [
    "PipelinedScatterPool",
    "PooledScatterPool",
    "SCATTER_MODES",
    "ScatterPool",
    "make_scatter_pool",
]


class ScatterPool:
    """The surface the sharded service scatters through."""

    name: str = "scatter"

    def submit(self, shard_index: int, fn: Callable, *args) -> Future:
        """Queue one shard leg; returns its future."""
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:
        """Release the pool's worker threads (idempotent)."""
        raise NotImplementedError


class PooledScatterPool(ScatterPool):
    """One shared FIFO executor for every shard's legs (the baseline)."""

    name = "pooled"

    def __init__(self, max_workers: int) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="shard"
        )

    def submit(self, shard_index: int, fn: Callable, *args) -> Future:
        # The caller gathers the returned future (as-completed, with
        # cancel-on-error); this wrapper only routes it.
        return self._executor.submit(fn, *args)  # repro-lint: ignore[RPR005] -- future is returned to the gathering caller

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PooledScatterPool(workers={self._executor._max_workers})"


class PipelinedScatterPool(ScatterPool):
    """One dedicated lane (executor) per shard: cross-query pipelining.

    ``lanes[i]`` is shard *i*'s worker count — 1 for a plain shard
    (its service lock serializes execution anyway), the replica count
    for a replicated shard (each replica has its own lock, so its
    reads genuinely parallelize).
    """

    name = "pipelined"

    def __init__(self, lanes: Sequence[int]) -> None:
        if not lanes or any(lane < 1 for lane in lanes):
            raise ValueError(f"every shard needs at least one lane: {lanes}")
        self.lanes = tuple(int(lane) for lane in lanes)
        self._executors = [
            ThreadPoolExecutor(max_workers=lane, thread_name_prefix=f"shard{i}")
            for i, lane in enumerate(self.lanes)
        ]

    def submit(self, shard_index: int, fn: Callable, *args) -> Future:
        # Routed onto the owning shard's lane; the caller gathers the
        # returned future as-completed.
        return self._executors[shard_index].submit(fn, *args)  # repro-lint: ignore[RPR005] -- future is returned to the gathering caller

    def shutdown(self, wait: bool = True) -> None:
        for executor in self._executors:
            executor.shutdown(wait=wait)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PipelinedScatterPool(lanes={self.lanes})"


#: Recognised ``scatter=`` mode names for :class:`ShardedQueryService`.
SCATTER_MODES = ("pipelined", "pooled")


def make_scatter_pool(
    mode: Union[str, ScatterPool],
    num_shards: int,
    lanes: Sequence[int],
    max_workers: int | None = None,
) -> ScatterPool:
    """Build the scatter pool for one service.

    ``mode`` is ``"pipelined"`` (default; per-shard lanes sized by
    ``lanes``), ``"pooled"`` (one shared executor with ``max_workers``
    or ``num_shards`` workers), or an already-built pool, which is
    adopted as-is.
    """
    if isinstance(mode, ScatterPool):
        return mode
    if mode == "pipelined":
        return PipelinedScatterPool(lanes)
    if mode == "pooled":
        return PooledScatterPool(max_workers or num_shards)
    raise ValueError(
        f"unknown scatter mode {mode!r}; expected one of {SCATTER_MODES}"
    )
