"""Horizontally partitioned document storage with a dynamic topology.

A :class:`ShardedCollection` splits a document forest across N shards.
Each shard is a fully independent vertical slice of the stack — see
:class:`~repro.shard.replica.Shard` — or, with ``replicas > 1``, a
:class:`~repro.shard.replica.ReplicatedShard` holding N identical
engine instances for read scale-out.  That independence is what buys
the serving tier its isolation properties: adding a document touches
one shard's indexes and invalidates one shard's result cache, while
the other shards keep serving cached answers.

Where documents live is not part of the collection any more: routing
is delegated to a :class:`~repro.shard.topology.ShardTopology`, an
explicit versioned routing table of
:class:`~repro.shard.topology.DocumentPlacement` records.  Because
every shard numbers nodes in a private id space starting at 1, each
placement records which shard took the document, the shard-local id
interval it occupies, and the *global* id interval it would occupy in
a single database that received the same documents in the same order.
Translating shard-local answers through these spans makes the sharded
tier answer-identical to a single-engine database (the differential
tests pin this), and lets queries be scoped to named documents with
shard pruning.

Making the topology explicit is what enables **online rebalancing**:
:meth:`ShardedCollection.move_document` detaches a document from its
source shard and re-adds it on a target shard — both halves through
the shards' incremental index maintenance
(:meth:`~repro.planner.evaluator.TwigQueryEngine.maintain_indexes`) —
while :meth:`~repro.shard.topology.ShardTopology.record_move` swaps
the routing entry in one atomic critical section.  The document keeps
its global id interval, so answers stay identical to a single engine
before, during and after the move; only the two shards touched bump
their generations and drop their cached results.
:meth:`ShardedCollection.rebalance` plans and applies a batch of such
moves under a placement policy, undoing the skew a sticky placement
has accumulated.

Removal routes to the owning shard
(:meth:`ShardedCollection.remove_document`): the shard's service
deletes the document from its database and indexes incrementally, and
the topology retires the placement — out of the live maps but still
translatable (off the hot path), so in-flight answers computed against
the pre-removal shard snapshot still map to global ids (the
consistent-cut contract).  :meth:`ShardedCollection.compact` prunes
those retired spans once readers have drained.  See
``docs/ARCHITECTURE.md`` ("The shard tier" and "Shard topology,
rebalancing & replication").
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from ..errors import DocumentError
from ..obs import Telemetry
from ..storage.stats import StatsCollector, maintenance_cost, sum_snapshots
from ..xmltree.document import Document
from .placement import PlacementPolicy, make_placement
from .replica import ReadPicker, ReplicatedShard, Shard
from .topology import DocumentPlacement, ShardTopology

__all__ = [
    "AutoRebalancer",
    "DocumentPlacement",
    "RebalanceMove",
    "RebalanceReport",
    "Shard",
    "ShardedCollection",
]


@dataclass(frozen=True)
class RebalanceMove:
    """One planned document move: which placement goes to which shard."""

    placement: DocumentPlacement
    target_shard: int


@dataclass(frozen=True)
class RebalanceReport:
    """What one :meth:`ShardedCollection.rebalance` call did and cost."""

    policy: str
    planned: int
    documents_moved: int
    nodes_moved: int
    spans_pruned: int
    #: Write-side cost of the whole rebalance in the shared maintenance
    #: currency (:func:`~repro.storage.stats.maintenance_cost`): the
    #: incremental deletes on every source shard plus the incremental
    #: inserts on every target shard.
    maintenance_cost: int


class ShardedCollection:
    """N shards, a placement policy, and a dynamic routing topology."""

    def __init__(
        self,
        num_shards: int = 4,
        placement: Union[str, PlacementPolicy] = "hash",
        replicas: int = 1,
        read_picker: Union[str, ReadPicker] = "round_robin",
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
        use_kernels: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        self.placement = make_placement(placement)
        #: One observability hub for the whole collection — every shard,
        #: replica and per-replica service shares it, so one query's
        #: spans land in one trace and every layer's ops events land in
        #: one ordered log.  The sharded query service adopts it.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        cache_options = dict(
            plan_cache_size=plan_cache_size,
            result_cache_size=result_cache_size,
            result_cache_ttl=result_cache_ttl,
            telemetry=self.telemetry,
            use_kernels=use_kernels,
        )
        if replicas == 1:
            self.shards: list[Union[Shard, ReplicatedShard]] = [
                Shard(i, **cache_options) for i in range(num_shards)
            ]
        else:
            self.shards = [
                ReplicatedShard(
                    i, replicas=replicas, read_picker=read_picker, **cache_options
                )
                for i in range(num_shards)
            ]
        #: The routing table: placements, id translation, epochs.  Its
        #: lock guards only routing bookkeeping and is never held
        #: across a shard's engine work, so a slow write to one shard
        #: cannot stall the gather (id translation) phase of queries on
        #: the other shards.
        self.topology = ShardTopology(num_shards)
        #: Replacements performed through :meth:`replace_document`; the
        #: per-shard services see a replace as a remove + an add, so
        #: this collection-level counter is the one place the operation
        #: is counted as itself.
        self.documents_replaced = 0
        self._replace_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def replica_count(self) -> int:
        """Replicas per shard (1 for plain shards)."""
        return self.shards[0].replica_count

    @property
    def document_count(self) -> int:
        return self.topology.document_count

    def add_document(self, document: Document) -> DocumentPlacement:
        """Route one document to its shard and record its routing entry.

        The placement policy picks the shard; the shard's service adds
        the document under the shard's own locks (maintaining that
        shard's built indexes incrementally and invalidating only that
        shard's cached results).  The topology lock is held only for
        the bookkeeping on either side of the add — never across the
        engine work — so writes to one shard do not stall queries (or
        writes) on the others.  Returns the recorded
        :class:`DocumentPlacement`.
        """
        ordinal = self.topology.next_ordinal()
        # Watermarks are read without the shard add locks: a concurrent
        # add can skew a weight, which costs a policy a slightly stale
        # balance decision, never correctness.
        weights = [shard.watermark for shard in self.shards]
        shard_index = self.placement.choose(document, ordinal, weights)
        if not 0 <= shard_index < self.num_shards:
            raise DocumentError(
                f"placement policy {self.placement.name!r} returned shard "
                f"{shard_index} outside [0, {self.num_shards})"
            )
        shard = self.shards[shard_index]
        with shard.add_lock:
            # The span is recorded *before* the engine add: the document
            # occupies exactly one id per node (renumbering is a pre-order
            # walk over the whole subtree), so its interval is known up
            # front.  Recording first means a concurrent query can never
            # see the new nodes without a span to translate them — it
            # either observes neither (a consistent cut without the
            # document) or both.  A span whose data has not landed yet
            # maps nothing and is harmless.
            local_start = shard.watermark
            count = document.count_nodes()
            placement = self.topology.reserve(
                document.name, ordinal, shard_index, local_start, count
            )
            # No rollback on failure: once the engine add starts, the
            # shard database may already hold the document's nodes, and
            # nothing in this codebase is transactional (a failed
            # single-node add leaves its engine just as mutated).
            # Keeping the span means any nodes that did land stay
            # translatable; a span whose data never landed maps nothing.
            shard.add_document(document)
            if shard.watermark != placement.local_end:
                raise DocumentError(
                    f"document {document.name!r} numbered "
                    f"{shard.watermark - local_start} ids but its span "
                    f"reserved {count}"
                )
            return placement

    def add_documents(self, documents: Iterable[Document]) -> list[DocumentPlacement]:
        """Route several documents (arrival order fixes the global ids)."""
        return [self.add_document(document) for document in documents]

    # ------------------------------------------------------------------
    # Removal and replacement
    # ------------------------------------------------------------------
    def remove_document(self, name: str) -> DocumentPlacement:
        """Remove the uniquely named document from its owning shard.

        The owning shard's service removes the document from its
        database and built indexes (incremental deletion where
        supported) and invalidates that shard's cached results only.
        The topology retires the placement: out of the live maps
        (``placements()``, ``placements_for``, ``document_count``) but
        still translatable off the hot path — local and global ids are
        never reused, so a concurrently scattered query that executed
        against the pre-removal shard snapshot can still translate its
        answer (the same consistent-cut contract adds follow, from the
        other direction) until :meth:`compact` prunes the span.
        Returns the retired placement.
        """
        placement = self.topology.resolve_unique(name)
        shard = self.shards[placement.shard_index]
        with shard.add_lock:
            shard.remove_document(name)
            self.topology.retire(placement)
        return placement

    def replace_document(self, name: str, replacement: Document) -> DocumentPlacement:
        """Replace the named document: remove it, then add ``replacement``.

        The replacement routes through the placement policy like any
        add (a hash policy keeps it on the same shard; others may not)
        and is numbered at the current global watermark — exactly the
        ids a single engine would assign after the same remove + add.
        Returns the new placement.

        Unlike the single-engine
        :meth:`~repro.service.service.QueryService.replace_document`,
        the two halves are **not** atomic under one lock: the
        replacement may land on a different shard, and holding two
        shards' add locks at once would invite lock-order deadlocks.
        A query racing a replace may therefore observe the gap state
        (old version gone, new version not yet added) — one more
        consistent cut under the tier's documented scatter-gather
        contract; once writes quiesce, answers are exact.
        """
        self.remove_document(name)
        placement = self.add_document(replacement)
        with self._replace_lock:
            self.documents_replaced += 1
        return placement

    # ------------------------------------------------------------------
    # Online rebalancing: document movement between shards
    # ------------------------------------------------------------------
    def move_document(
        self, ref: Union[DocumentPlacement, str], target_shard: int
    ) -> DocumentPlacement:
        """Move one live document to ``target_shard``, online.

        The move is a remove from the source shard plus an add on the
        target shard, both through the shards' services and therefore
        through the same incremental index-maintenance family
        (:meth:`~repro.planner.evaluator.TwigQueryEngine.maintain_indexes`)
        every other mutation uses: the source's indexes forget the
        document's rows, the target's indexes absorb them, and each
        side's write work lands in its own collector in the shared
        maintenance currency.  Only those two shards bump their service
        generations — the other shards' caches keep serving.

        The routing entry is swapped atomically
        (:meth:`~repro.shard.topology.ShardTopology.record_move`): the
        document keeps its **global** id interval and gains a fresh
        local interval at the target's watermark, so merged answers are
        identical to a single engine's — a move is invisible in the
        global id space.  Both shards' add locks are held (in shard
        order, so concurrent moves cannot deadlock) across the whole
        move.  A scatter racing the move may observe the document on
        *neither* shard (source leg after the removal, target leg
        before the add — the same documented gap a cross-shard
        :meth:`replace_document` has) or on *both* (source leg before
        the removal, target leg after the add); in the latter case both
        observations translate to the same global interval and the
        gather deduplicates, so an answer never double-counts a node.
        Returns the new placement; a move to the owning shard is a
        no-op.
        """
        if isinstance(ref, DocumentPlacement):
            placement = ref
            if not self.topology.is_live(placement):
                raise DocumentError(
                    f"placement of {placement.name!r} (ordinal "
                    f"{placement.ordinal}) is not live"
                )
        else:
            placement = self.topology.resolve_unique(ref)
        if not 0 <= target_shard < self.num_shards:
            raise DocumentError(
                f"shard index {target_shard} outside [0, {self.num_shards})"
            )
        if target_shard == placement.shard_index:
            return placement
        source = self.shards[placement.shard_index]
        target = self.shards[target_shard]
        # Deadlock-free two-shard locking: always in ascending shard
        # order, whatever direction the move goes.
        first, second = sorted((source, target), key=lambda shard: shard.index)
        with first.add_lock, second.add_lock:
            # Re-check under the locks: a removal (or another move) may
            # have retired the placement between resolution and here.
            if not self.topology.is_live(placement):
                raise DocumentError(
                    f"placement of {placement.name!r} (ordinal "
                    f"{placement.ordinal}) is not live"
                )
            document = source.document_at(placement.local_start)
            local_start = target.watermark
            moved = self.topology.record_move(placement, target_shard, local_start)
            detached = source.remove_document(document)
            target.add_document(detached)
            if target.watermark != moved.local_end:
                raise DocumentError(
                    f"document {document.name!r} numbered "
                    f"{target.watermark - local_start} ids on shard "
                    f"{target_shard} but its span reserved {moved.node_count}"
                )
            target.note_move()
        return moved

    def plan_rebalance(
        self, policy: Union[str, PlacementPolicy, None] = None
    ) -> list[RebalanceMove]:
        """The moves that re-place every live document under ``policy``.

        Replays the live documents in arrival order through the policy
        against simulated (initially empty) node-count weights — the
        assignment the policy would have produced had it placed the
        whole corpus itself — and returns a move for every document
        whose current shard differs.  Deterministic for deterministic
        policies: :class:`~repro.shard.placement.SizeBalancedPlacement`
        breaks weight ties by lowest shard index, so the same corpus
        always yields the same plan.  Defaults to ``size_balanced``
        (the policy that undoes skew); planning mutates nothing.
        """
        chosen = make_placement(policy or "size_balanced")
        weights = [0] * self.num_shards
        moves: list[RebalanceMove] = []
        for placement in self.topology.placements():
            try:
                document = self.shards[placement.shard_index].document_at(
                    placement.local_start
                )
            except DocumentError:
                # A removal or move racing the plan can retire the
                # placement (and detach its shard-side document) at any
                # point after the placements() snapshot.  Planning
                # mutates nothing, so skip the placement rather than
                # fail the whole plan — which, from a background
                # auto-rebalance, would fail an unrelated caller.  A
                # placement that is live but genuinely unresolvable
                # still surfaces at move time, which re-checks liveness
                # under the shard locks.
                continue
            target = chosen.choose(document, placement.ordinal, weights)
            if not 0 <= target < self.num_shards:
                raise DocumentError(
                    f"placement policy {chosen.name!r} returned shard "
                    f"{target} outside [0, {self.num_shards})"
                )
            weights[target] += placement.node_count
            if target != placement.shard_index:
                moves.append(RebalanceMove(placement, target))
        return moves

    def rebalance(
        self,
        policy: Union[str, PlacementPolicy, None] = None,
        compact: bool = False,
    ) -> RebalanceReport:
        """Plan and apply a rebalance; optionally compact retired spans.

        Every planned move runs through :meth:`move_document` — online,
        two shards at a time, answers identical throughout.  With
        ``compact=True`` every retired span — those these moves
        retired *plus* any left by earlier removal/move churn — is
        pruned afterwards (do this when no pre-rebalance answers are
        still in flight); the report's ``spans_pruned`` counts that
        whole compaction.  Returns a :class:`RebalanceReport` pricing
        the whole operation in the shared maintenance currency.
        """
        plan = self.plan_rebalance(policy)
        before = [shard.stats_snapshot() for shard in self.shards]
        moved = 0
        nodes_moved = 0
        for move in plan:
            # A removal racing the rebalance may retire a planned
            # placement at any point up to the move's lock acquisition;
            # skip dead placements rather than failing the whole batch.
            try:
                applied = self.move_document(move.placement, move.target_shard)
            except DocumentError:
                if self.topology.is_live(move.placement):
                    raise
                continue
            moved += 1
            nodes_moved += applied.node_count
        pruned = self.compact() if compact else 0
        spent = sum_snapshots(
            *(
                shard.stats_diff(snapshot)
                for shard, snapshot in zip(self.shards, before)
            )
        )
        return RebalanceReport(
            policy=make_placement(policy or "size_balanced").name,
            planned=len(plan),
            documents_moved=moved,
            nodes_moved=nodes_moved,
            spans_pruned=pruned,
            maintenance_cost=maintenance_cost(spent),
        )

    def compact(self) -> int:
        """Prune retired placement spans from the routing table.

        Delegates to :meth:`~repro.shard.topology.ShardTopology.compact`;
        call between query waves — answers computed against
        pre-retirement shard snapshots stop translating.  Returns the
        number of spans pruned.
        """
        return self.topology.compact()

    # ------------------------------------------------------------------
    # Index management (fanned to every shard)
    # ------------------------------------------------------------------
    def build_index(self, name: str, **options) -> None:
        """Build one index of the family on every shard (and replica)."""
        for shard in self.shards:
            shard.build_index(name, **options)

    def ensure_indexes_for(self, strategy_name: str) -> None:
        """Build whatever indexes a strategy needs, on every shard."""
        for shard in self.shards:
            shard.ensure_indexes_for(strategy_name)

    def index_sizes_mb(self) -> dict[str, float]:
        """Total size per index name, summed across shards.

        Replicated shards report one replica's copy (the physical total
        is that times the replica count).
        """
        totals: dict[str, float] = {}
        for shard in self.shards:
            for name, size in shard.index_sizes_mb().items():
                totals[name] = totals.get(name, 0.0) + size
        return totals

    # ------------------------------------------------------------------
    # Id translation and document lookup (delegated to the topology)
    # ------------------------------------------------------------------
    def to_global(self, shard_index: int, local_id: int) -> int:
        """Translate one shard-local node id into the global id space."""
        return self.topology.to_global(shard_index, local_id)

    def translate_sorted(
        self,
        shard_index: int,
        local_ids: Sequence[int],
        scope: Optional[Sequence[DocumentPlacement]] = None,
    ) -> list[int]:
        """Translate ascending shard-local ids in one pass (one lock)."""
        return self.topology.translate_sorted(shard_index, local_ids, scope=scope)

    def placements_for(self, name: str) -> list[DocumentPlacement]:
        """Every live placement recorded under one document name."""
        return self.topology.placements_for(name)

    def placements(self) -> list[DocumentPlacement]:
        """All live placements in arrival order."""
        return self.topology.placements()

    def shards_for_documents(
        self, names: Sequence[str]
    ) -> dict[int, list[DocumentPlacement]]:
        """Shard index -> the named documents it holds (pruning map)."""
        return self.topology.shards_for_documents(names)

    def global_spans_for(self, names: Sequence[str]) -> list[tuple[int, int]]:
        """The named documents' global id intervals (scoping filter)."""
        return self.topology.global_spans_for(names)

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Collection topology and per-shard summaries."""
        report = {
            "num_shards": self.num_shards,
            "placement": self.placement.name,
            "replicas": self.replica_count,
            "documents": self.document_count,
            "global_watermark": self.topology.global_watermark,
            "topology": self.topology.describe(),
        }
        # shard.describe() takes each shard's own service lock and may
        # wait behind a write there; no collection-level lock is held
        # around it, so it cannot stall other shards' gather phases.
        report["shards"] = [shard.describe() for shard in self.shards]
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedCollection(shards={self.num_shards}, "
            f"placement={self.placement.name!r}, "
            f"replicas={self.replica_count}, "
            f"documents={self.document_count})"
        )


# ----------------------------------------------------------------------
# Self-driving rebalance: watermark trigger with a hysteresis band
# ----------------------------------------------------------------------
class AutoRebalancer:
    """Watermark-triggered background rebalancing over one collection.

    Closes the loop PR 5 left manual.  The sharded query service calls
    :meth:`tick` between queries; every ``check_interval``-th tick
    measures the topology's placement skew
    (:meth:`~repro.shard.topology.ShardTopology.skew`, the
    max-weight-over-mean ratio across shards).  When the ratio reaches
    ``high_watermark`` while the trigger is armed, one
    ``rebalance(policy)`` fires — in a single background worker by
    default, so queries keep flowing while documents move (a rebalance
    is online by construction) — and the trigger **disarms**.  It
    re-arms only once a later check measures skew below
    ``low_watermark``: the hysteresis band ``[low, high]`` guarantees
    exactly one rebalance per sustained skew episode, instead of
    thrashing move traffic while a corpus hovers at the threshold.

    Everything is deterministic: no timers, no wall clock — ticks are
    queries, checks are counted ticks, and the skew measure is a pure
    function of the routing table.  Activity lands in ``stats``
    (``auto_rebalances``, merged into the service's cost accounting)
    and a bounded episode log surfaced by :meth:`describe` under the
    service's ``operations`` key.  A rebalance that *fails* is recorded
    the same way (``auto_rebalance_failures`` / ``last_error`` /
    the episode's ``error`` field) and never raises into the query
    path that happened to tick afterwards — background operations
    failures are status, not answers.
    """

    #: Bound on the episode log kept for ``describe()``.
    MAX_EPISODES = 16

    def __init__(
        self,
        collection: ShardedCollection,
        policy: Union[str, PlacementPolicy, None] = None,
        high_watermark: float = 2.0,
        low_watermark: float = 1.25,
        check_interval: int = 8,
        min_documents: Optional[int] = None,
        background: bool = True,
        enabled: bool = False,
    ) -> None:
        if not 1.0 <= low_watermark < high_watermark:
            raise ValueError(
                f"need 1.0 <= low_watermark < high_watermark, got "
                f"{low_watermark} / {high_watermark}"
            )
        if check_interval < 1:
            raise ValueError(f"check_interval must be positive: {check_interval}")
        self.collection = collection
        self.policy = make_placement(policy or "size_balanced")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.check_interval = check_interval
        #: Below this corpus size a skewed ratio is noise (two documents
        #: on one shard of four already read as ratio 4.0), so the
        #: trigger holds fire.  Defaults to two documents per shard.
        self.min_documents = (
            min_documents
            if min_documents is not None
            else 2 * collection.num_shards
        )
        self.enabled = enabled
        #: The collection's hub (a disabled stand-in when the collection
        #: has none), so trigger/completion/failure events land in the
        #: same ops log as the replica transitions they interleave with.
        telemetry = getattr(collection, "telemetry", None)
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(enabled=False)
        )
        self.stats = StatsCollector()
        self.last_report: Optional[RebalanceReport] = None
        #: ``repr`` of the most recent run's exception, ``None`` after a
        #: success — the status surface for background failures.
        self.last_error: Optional[str] = None
        self._failures = 0
        self._lock = threading.Lock()
        self._armed = True
        self._ticks = 0
        self._checks = 0
        self._last_skew: Optional[dict[str, object]] = None
        self._episodes: list[dict[str, object]] = []
        self._episodes_total = 0
        self._pending: Optional[Future] = None
        self._executor = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="auto-rebalance")
            if background
            else None
        )

    # ------------------------------------------------------------------
    def tick(self) -> Optional[dict[str, object]]:
        """One between-queries heartbeat; runs a skew check every
        ``check_interval`` ticks.  Returns the check record when one
        ran, else ``None``.  Cheap when disabled or off-interval (one
        lock, one counter)."""
        if not self.enabled:
            return None
        with self._lock:
            self._ticks += 1
            due = self._ticks % self.check_interval == 0
        if not due:
            return None
        return self.check()

    def check(self) -> dict[str, object]:
        """Measure skew and apply the watermark policy right now.

        Public so tests (and operators) can force a check without
        queueing ``check_interval`` queries.  Also reaps a finished
        background run (its outcome — success or failure — was already
        recorded by the run itself; nothing raises here).
        """
        self._reap()
        skew = self.collection.topology.skew()
        ratio = float(skew["ratio"])
        fired = False
        run_inline = False
        with self._lock:
            self._checks += 1
            self._last_skew = skew
            if not self._armed and ratio < self.low_watermark:
                # The episode's skew has drained; re-arm for the next one.
                self._armed = True
            if (
                self._armed
                and self._pending is None
                and ratio >= self.high_watermark
                and self.collection.document_count >= self.min_documents
            ):
                self._armed = False
                fired = True
                self._episodes_total += 1
                self._episodes.append(
                    {"episode": self._episodes_total, "trigger_ratio": ratio}
                )
                del self._episodes[: -self.MAX_EPISODES]
                self.telemetry.event(
                    "auto-rebalance",
                    phase="triggered",
                    episode=self._episodes_total,
                    ratio=ratio,
                )
                if self._executor is not None:
                    # Submitted inside the same locked section that
                    # disarmed the trigger: the future is published
                    # atomically with the firing decision, so a
                    # drain()/close() racing this check either sees no
                    # fire or sees the in-flight run — never a
                    # fired-but-unpublished window it could return
                    # through with stale state.
                    # repro-lint: ignore[RPR005] -- published to self._pending; _reap/drain()/close() consume it
                    self._pending = self._executor.submit(self._run)
                else:
                    run_inline = True
        if run_inline:
            self._run()
        return {"ratio": ratio, "fired": fired, "armed_after": not fired}

    def _run(self) -> None:
        """One triggered rebalance; records its own outcome, never raises.

        A failure must not escape: in background mode it would land in
        a future whose ``result()`` is called from a later query's tick
        path, failing an unrelated caller whose answer was already
        gathered.  Instead both outcomes are recorded under the lock
        and surfaced through :meth:`describe` (``auto_rebalances`` /
        ``auto_rebalance_failures`` / ``last_error`` and the episode
        log).
        """
        try:
            report = self.collection.rebalance(self.policy)
        except Exception as error:  # repro-lint: ignore[RPR005] -- recorded and surfaced via describe(); a background operations failure must not fail an unrelated query caller
            with self._lock:
                self._failures += 1
                self.last_error = repr(error)
                if self._episodes:
                    self._episodes[-1]["error"] = repr(error)
                episode = self._episodes_total
            self.telemetry.event(
                "auto-rebalance",
                phase="failed",
                episode=episode,
                error=repr(error),
            )
            return
        with self._lock:
            self.stats.auto_rebalances += 1
            self.last_report = report
            self.last_error = None
            if self._episodes:
                self._episodes[-1]["report"] = dataclasses.asdict(report)
            episode = self._episodes_total
        self.telemetry.event(
            "auto-rebalance",
            phase="completed",
            episode=episode,
            documents_moved=report.documents_moved,
            nodes_moved=report.nodes_moved,
        )

    def _reap(self) -> None:
        """Clear a finished background run so the firing gate re-opens.

        Pure bookkeeping: :meth:`_run` records its own success or
        failure, so there is no exception to propagate — a background
        failure surfaces through :meth:`describe`, never through the
        query whose tick happened to reap it.
        """
        with self._lock:
            if self._pending is not None and self._pending.done():
                self._pending = None

    def drain(self) -> Optional[RebalanceReport]:
        """Block until any in-flight background rebalance completes.

        Returns the latest completed report (tests call this to make
        'the rebalance has happened' deterministic before asserting).
        Never raises: a failed run records itself and shows up in
        :meth:`describe` instead.
        """
        with self._lock:
            future = self._pending
            self._pending = None
        if future is not None:
            future.result()  # waits only; _run never raises
        with self._lock:
            return self.last_report

    def close(self) -> None:
        """Drain and shut the background worker down."""
        self.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Trigger configuration and activity (JSON-serializable)."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "policy": self.policy.name,
                "high_watermark": self.high_watermark,
                "low_watermark": self.low_watermark,
                "check_interval": self.check_interval,
                "min_documents": self.min_documents,
                "background": self._executor is not None,
                "armed": self._armed,
                "in_flight": self._pending is not None,
                "ticks": self._ticks,
                "checks": self._checks,
                "auto_rebalances": self.stats.auto_rebalances,
                "auto_rebalance_failures": self._failures,
                "last_error": self.last_error,
                "episodes_total": self._episodes_total,
                "last_skew": self._last_skew,
                "episodes": [dict(episode) for episode in self._episodes],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AutoRebalancer(enabled={self.enabled}, "
            f"policy={self.policy.name!r}, "
            f"band=[{self.low_watermark}, {self.high_watermark}])"
        )
