"""Horizontally partitioned document storage: shards and id translation.

A :class:`ShardedCollection` splits a document forest across N
:class:`Shard` objects.  Each shard is a fully independent vertical
slice of the stack — its own
:class:`~repro.xmltree.document.XmlDatabase`,
:class:`~repro.storage.stats.StatsCollector`,
:class:`~repro.planner.evaluator.TwigQueryEngine` (with its own index
family) and :class:`~repro.service.QueryService` (with its own caches
and generation fingerprint).  That independence is what buys the
serving tier its isolation properties: adding a document touches one
shard's indexes and invalidates one shard's result cache, while the
other shards keep serving cached answers.

Because every shard numbers nodes in a private id space starting at 1,
the collection records a :class:`DocumentPlacement` per add — which
shard took the document, the shard-local id interval it occupies, and
the *global* id interval it would occupy in a single database that
received the same documents in the same order.  Translating shard-local
answers through these spans makes the sharded tier answer-identical to
a single-engine database (the differential tests pin this), and lets
queries be scoped to named documents with shard pruning.

Removal routes to the owning shard
(:meth:`ShardedCollection.remove_document`): the shard's service
deletes the document from its database and indexes incrementally, and
the collection retires the placement from the live maps while keeping
its span in the translation table — neither global nor shard-local ids
are ever reused, so in-flight answers computed against the pre-removal
shard snapshot still translate (the consistent-cut contract), and the
post-removal id space equals a single engine's after the same removal.
See ``docs/ARCHITECTURE.md`` ("The shard tier").
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from ..errors import DocumentError
from ..planner.evaluator import TwigQueryEngine
from ..service.service import QueryService
from ..storage.stats import StatsCollector
from ..xmltree.document import Document, VIRTUAL_ROOT_ID, XmlDatabase
from .placement import PlacementPolicy, make_placement


@dataclass(frozen=True)
class DocumentPlacement:
    """Where one document lives and which id intervals it owns.

    ``local_*`` bounds are in the owning shard's id space, ``global_*``
    bounds in the equivalent single-database id space; both intervals
    are half-open and have equal length, so translation is the linear
    shift ``global_start + (local_id - local_start)``.
    """

    name: str
    ordinal: int
    shard_index: int
    local_start: int
    local_end: int
    global_start: int
    global_end: int

    @property
    def node_count(self) -> int:
        """Number of node ids (structural and value) the document owns."""
        return self.local_end - self.local_start


class Shard:
    """One partition: a private database, engine, stats and service."""

    def __init__(
        self,
        index: int,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl: Optional[float] = None,
    ) -> None:
        self.index = index
        self.db = XmlDatabase()
        self.stats = StatsCollector()
        self.engine = TwigQueryEngine(self.db, stats=self.stats)
        self.service = QueryService(
            self.engine,
            plan_cache_size=plan_cache_size,
            result_cache_size=result_cache_size,
            result_cache_ttl=result_cache_ttl,
        )
        #: Serializes adds *to this shard* (watermark read + engine add
        #: + span record must be atomic per shard), without making other
        #: shards' reads or writes wait.
        self.add_lock = threading.RLock()

    @property
    def watermark(self) -> int:
        """The shard database's next unassigned node id."""
        return self.db.revision[1]

    @property
    def document_count(self) -> int:
        return len(self.db.documents)

    def describe(self) -> dict[str, object]:
        """Shard-level size and cache counters."""
        return {
            "documents": self.document_count,
            "node_watermark": self.watermark,
            "indexes": sorted(self.engine.indexes),
            "service": self.service.describe(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shard(index={self.index}, documents={self.document_count})"


class ShardedCollection:
    """N shards, a placement policy, and the local/global id mapping."""

    def __init__(
        self,
        num_shards: int = 4,
        placement: Union[str, PlacementPolicy] = "hash",
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl: Optional[float] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.placement = make_placement(placement)
        self.shards = [
            Shard(
                i,
                plan_cache_size=plan_cache_size,
                result_cache_size=result_cache_size,
                result_cache_ttl=result_cache_ttl,
            )
            for i in range(num_shards)
        ]
        #: Guards only the collection's *bookkeeping* — ordinal and
        #: global-id allocation, span lists, name map.  It is never held
        #: across a shard's engine add, so a slow write to one shard
        #: cannot stall the gather (id translation) phase of queries on
        #: the other shards.
        self._lock = threading.RLock()
        self._ordinal = 0
        #: Replacements performed through :meth:`replace_document`; the
        #: per-shard services see a replace as a remove + an add, so
        #: this collection-level counter is the one place the operation
        #: is counted as itself.
        self.documents_replaced = 0
        self._placements: list[DocumentPlacement] = []
        self._by_name: dict[str, list[DocumentPlacement]] = {}
        #: Per shard: placements sorted by local_start (adds only ever
        #: append growing intervals, serialized per shard).
        self._shard_spans: list[list[DocumentPlacement]] = [
            [] for _ in range(num_shards)
        ]
        self._global_next = 1

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def document_count(self) -> int:
        return len(self._placements)

    def add_document(self, document: Document) -> DocumentPlacement:
        """Route one document to its shard and record its id spans.

        The placement policy picks the shard; the shard's service adds
        the document under the shard's own locks (maintaining that
        shard's built indexes incrementally and invalidating only that
        shard's cached results).  The collection lock is held only for
        the bookkeeping on either side of the add — never across the
        engine work — so writes to one shard do not stall queries (or
        writes) on the others.  Returns the recorded
        :class:`DocumentPlacement`.
        """
        with self._lock:
            ordinal = self._ordinal
            self._ordinal += 1
            # Watermarks are read without the shard add locks: a
            # concurrent add can skew a weight, which costs a policy a
            # slightly stale balance decision, never correctness.
            weights = [shard.watermark for shard in self.shards]
        shard_index = self.placement.choose(document, ordinal, weights)
        if not 0 <= shard_index < self.num_shards:
            raise DocumentError(
                f"placement policy {self.placement.name!r} returned shard "
                f"{shard_index} outside [0, {self.num_shards})"
            )
        shard = self.shards[shard_index]
        with shard.add_lock:
            # The span is recorded *before* the engine add: the document
            # occupies exactly one id per node (renumbering is a pre-order
            # walk over the whole subtree), so its interval is known up
            # front.  Recording first means a concurrent query can never
            # see the new nodes without a span to translate them — it
            # either observes neither (a consistent cut without the
            # document) or both.  A span whose data has not landed yet
            # maps nothing and is harmless.
            local_start = shard.watermark
            count = document.count_nodes()
            with self._lock:
                placement = DocumentPlacement(
                    name=document.name,
                    ordinal=ordinal,
                    shard_index=shard_index,
                    local_start=local_start,
                    local_end=local_start + count,
                    global_start=self._global_next,
                    global_end=self._global_next + count,
                )
                self._global_next += count
                self._placements.append(placement)
                self._by_name.setdefault(placement.name, []).append(placement)
                self._shard_spans[shard_index].append(placement)
            # No rollback on failure: once the engine add starts, the
            # shard database may already hold the document's nodes, and
            # nothing in this codebase is transactional (a failed
            # single-node add leaves its engine just as mutated).
            # Keeping the span means any nodes that did land stay
            # translatable; a span whose data never landed maps nothing.
            shard.service.add_document(document)
            if shard.watermark != placement.local_end:
                raise DocumentError(
                    f"document {document.name!r} numbered "
                    f"{shard.watermark - local_start} ids but its span "
                    f"reserved {count}"
                )
            return placement

    def add_documents(self, documents: Iterable[Document]) -> list[DocumentPlacement]:
        """Route several documents (arrival order fixes the global ids)."""
        return [self.add_document(document) for document in documents]

    # ------------------------------------------------------------------
    # Removal and replacement
    # ------------------------------------------------------------------
    def remove_document(self, name: str) -> DocumentPlacement:
        """Remove the uniquely named document from its owning shard.

        The owning shard's service removes the document from its
        database and built indexes (incremental deletion where
        supported) and invalidates that shard's cached results only.
        The placement is retired from the live maps (``placements()``,
        ``placements_for``, ``document_count``) but its span stays in
        the shard's translation table: local and global ids are never
        reused, so a concurrently scattered query that executed against
        the pre-removal shard snapshot can still translate its answer —
        the same consistent-cut contract adds follow, from the other
        direction.  Returns the retired placement.
        """
        with self._lock:
            placements = self._by_name.get(name, [])
            if not placements:
                raise DocumentError(f"no document named {name!r}")
            if len(placements) > 1:
                raise DocumentError(
                    f"document name {name!r} is ambiguous "
                    f"({len(placements)} placements)"
                )
            placement = placements[0]
        shard = self.shards[placement.shard_index]
        with shard.add_lock:
            shard.service.remove_document(name)
            with self._lock:
                self._placements.remove(placement)
                remaining = self._by_name[name]
                remaining.remove(placement)
                if not remaining:
                    del self._by_name[name]
        return placement

    def replace_document(self, name: str, replacement: Document) -> DocumentPlacement:
        """Replace the named document: remove it, then add ``replacement``.

        The replacement routes through the placement policy like any
        add (a hash policy keeps it on the same shard; others may not)
        and is numbered at the current global watermark — exactly the
        ids a single engine would assign after the same remove + add.
        Returns the new placement.

        Unlike the single-engine
        :meth:`~repro.service.service.QueryService.replace_document`,
        the two halves are **not** atomic under one lock: the
        replacement may land on a different shard, and holding two
        shards' add locks at once would invite lock-order deadlocks.
        A query racing a replace may therefore observe the gap state
        (old version gone, new version not yet added) — one more
        consistent cut under the tier's documented scatter-gather
        contract; once writes quiesce, answers are exact.
        """
        self.remove_document(name)
        placement = self.add_document(replacement)
        with self._lock:
            self.documents_replaced += 1
        return placement

    # ------------------------------------------------------------------
    # Index management (fanned to every shard)
    # ------------------------------------------------------------------
    def build_index(self, name: str, **options) -> None:
        """Build one index of the family on every shard."""
        for shard in self.shards:
            shard.service.build_index(name, **options)

    def ensure_indexes_for(self, strategy_name: str) -> None:
        """Build whatever indexes a strategy needs, on every shard."""
        for shard in self.shards:
            shard.engine.ensure_indexes_for(strategy_name)

    def index_sizes_mb(self) -> dict[str, float]:
        """Total size per index name, summed across shards."""
        totals: dict[str, float] = {}
        for shard in self.shards:
            for name, size in shard.engine.index_sizes_mb().items():
                totals[name] = totals.get(name, 0.0) + size
        return totals

    # ------------------------------------------------------------------
    # Id translation and document lookup
    # ------------------------------------------------------------------
    def to_global(self, shard_index: int, local_id: int) -> int:
        """Translate one shard-local node id into the global id space."""
        if local_id == VIRTUAL_ROOT_ID:
            # Every shard's virtual root is the same global virtual root.
            return VIRTUAL_ROOT_ID
        with self._lock:
            spans = self._shard_spans[shard_index]
            position = (
                bisect.bisect_right(spans, local_id, key=lambda s: s.local_start) - 1
            )
            if position >= 0:
                span = spans[position]
                if span.local_start <= local_id < span.local_end:
                    return span.global_start + (local_id - span.local_start)
        raise DocumentError(
            f"shard {shard_index} has no document covering local id {local_id}"
        )

    def translate_sorted(
        self,
        shard_index: int,
        local_ids: Sequence[int],
        scope: Optional[Sequence[DocumentPlacement]] = None,
    ) -> list[int]:
        """Translate ascending shard-local ids in one pass (one lock).

        Query answers come back in ascending local id order, so a single
        merge-style walk over the shard's (also ascending) document
        spans translates the whole answer without a per-id bisect.
        ``scope`` restricts the output to the given documents' intervals
        — ids outside them (other documents co-resident on the shard)
        are dropped, which is the filtering half of shard pruning.
        """
        allowed: Optional[set[int]] = None
        if scope is not None:
            allowed = {placement.ordinal for placement in scope}
        with self._lock:
            # Snapshot the (append-only) span list and translate outside
            # the lock: the walk is O(answer size) and must not become a
            # serial section across every query's gather phase.
            spans = list(self._shard_spans[shard_index])
        translated: list[int] = []
        position = 0
        for local_id in local_ids:
            if local_id == VIRTUAL_ROOT_ID:
                translated.append(VIRTUAL_ROOT_ID)
                continue
            while position < len(spans) and local_id >= spans[position].local_end:
                position += 1
            if position >= len(spans) or local_id < spans[position].local_start:
                raise DocumentError(
                    f"shard {shard_index} has no document covering "
                    f"local id {local_id} (ids must be ascending)"
                )
            span = spans[position]
            if allowed is not None and span.ordinal not in allowed:
                continue
            translated.append(span.global_start + (local_id - span.local_start))
        return translated

    def placements_for(self, name: str) -> list[DocumentPlacement]:
        """Every placement recorded under one document name."""
        with self._lock:
            try:
                return list(self._by_name[name])
            except KeyError:
                raise DocumentError(f"no document named {name!r}") from None

    def placements(self) -> list[DocumentPlacement]:
        """All placements in arrival order."""
        with self._lock:
            return list(self._placements)

    def shards_for_documents(
        self, names: Sequence[str]
    ) -> dict[int, list[DocumentPlacement]]:
        """Shard index -> the named documents it holds (pruning map).

        Shards holding none of the named documents are absent — this is
        the scatter set for a document-scoped query.
        """
        targets: dict[int, list[DocumentPlacement]] = {}
        for name in names:
            for placement in self.placements_for(name):
                targets.setdefault(placement.shard_index, []).append(placement)
        return targets

    def global_spans_for(self, names: Sequence[str]) -> list[tuple[int, int]]:
        """The named documents' global id intervals (scoping filter)."""
        return [
            (placement.global_start, placement.global_end)
            for name in names
            for placement in self.placements_for(name)
        ]

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Collection topology and per-shard summaries."""
        with self._lock:
            # Only the bookkeeping snapshot runs under the collection
            # lock; shard.describe() takes each shard's own service lock
            # and may wait behind a write there, which must not stall
            # the other shards' gather phases through this lock.
            report = {
                "num_shards": self.num_shards,
                "placement": self.placement.name,
                "documents": self.document_count,
                "global_watermark": self._global_next,
            }
        report["shards"] = [shard.describe() for shard in self.shards]
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedCollection(shards={self.num_shards}, "
            f"placement={self.placement.name!r}, "
            f"documents={self.document_count})"
        )
