"""Sharded collections: dynamic topology, rebalancing, replica read-out.

The horizontal-scaling tier over the paper's index family: a
:class:`ShardedCollection` partitions documents across N self-contained
shards (each with its own database, indexes, statistics and
single-node :class:`~repro.service.QueryService`), and a
:class:`ShardedQueryService` fans twig queries out to the relevant
shards on a thread pool, translating and merging the per-shard answers
into the global id space so the sharded tier is answer-identical to a
single engine.

Routing lives in an explicit, versioned :class:`ShardTopology` — a
table of :class:`DocumentPlacement` records — which makes the topology
*dynamic*: :meth:`ShardedCollection.move_document` re-routes one
document online and :meth:`ShardedCollection.rebalance` re-places a
skewed corpus under a policy, both through the shards' incremental
index maintenance, with global ids (and therefore answers) unchanged
throughout.  :class:`ReplicatedShard` puts N identical engine
instances behind one shard for read scale-out, with pluggable read
pickers (:data:`READ_PICKERS`) and write-through maintenance.

The tier is *self-driving*: every replica carries a
:class:`ReplicaHealth` state machine (healthy → suspect → dead) so
failed reads retry on the next healthy replica,
:meth:`ReplicatedShard.revive` re-syncs a quarantined replica from the
shard's write log, and an :class:`AutoRebalancer` watches the
topology's skew ratio between queries and fires ``rebalance(policy)``
through a hysteresis band.  The deterministic fault-injection module
(:mod:`repro.faults`) exercises all of it from tests and benches.

Placement is pluggable (:data:`PLACEMENT_POLICIES`): hash-by-name,
round-robin, or size-balanced (deterministic lowest-index tie-break).
"""

from .collection import (
    AutoRebalancer,
    DocumentPlacement,
    RebalanceMove,
    RebalanceReport,
    Shard,
    ShardedCollection,
)
from .placement import (
    HashPlacement,
    PLACEMENT_POLICIES,
    PlacementPolicy,
    RoundRobinPlacement,
    SizeBalancedPlacement,
    make_placement,
)
from .replica import (
    LeastLoadedPicker,
    QUERY_ERRORS,
    READ_PICKERS,
    REPLICA_DEAD,
    REPLICA_HEALTHY,
    REPLICA_STATES,
    REPLICA_SUSPECT,
    ReadPicker,
    ReplicaHealth,
    ReplicatedShard,
    RoundRobinPicker,
    StickyPicker,
    make_picker,
)
from .service import ShardedQueryService
from .topology import ShardTopology

__all__ = [
    "AutoRebalancer",
    "DocumentPlacement",
    "HashPlacement",
    "LeastLoadedPicker",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "QUERY_ERRORS",
    "READ_PICKERS",
    "REPLICA_DEAD",
    "REPLICA_HEALTHY",
    "REPLICA_STATES",
    "REPLICA_SUSPECT",
    "ReadPicker",
    "ReplicaHealth",
    "RebalanceMove",
    "RebalanceReport",
    "ReplicatedShard",
    "RoundRobinPicker",
    "RoundRobinPlacement",
    "Shard",
    "ShardedCollection",
    "ShardedQueryService",
    "SizeBalancedPlacement",
    "StickyPicker",
    "ShardTopology",
    "make_picker",
    "make_placement",
]
