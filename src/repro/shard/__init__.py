"""Sharded collections with parallel scatter-gather query execution.

The horizontal-scaling tier over the paper's index family: a
:class:`ShardedCollection` partitions documents across N self-contained
shards (each with its own database, indexes, statistics and
single-node :class:`~repro.service.QueryService`), and a
:class:`ShardedQueryService` fans twig queries out to the relevant
shards on a thread pool, translating and merging the per-shard answers
into the global id space so the sharded tier is answer-identical to a
single engine.

Placement is pluggable (:data:`PLACEMENT_POLICIES`): hash-by-name,
round-robin, or size-balanced.
"""

from .collection import DocumentPlacement, Shard, ShardedCollection
from .placement import (
    HashPlacement,
    PLACEMENT_POLICIES,
    PlacementPolicy,
    RoundRobinPlacement,
    SizeBalancedPlacement,
    make_placement,
)
from .service import ShardedQueryService

__all__ = [
    "DocumentPlacement",
    "HashPlacement",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "Shard",
    "ShardedCollection",
    "ShardedQueryService",
    "SizeBalancedPlacement",
    "make_placement",
]
