"""Scatter-gather query execution over a sharded collection.

:class:`ShardedQueryService` mirrors the single-node
:class:`~repro.service.QueryService` facade (``execute`` /
``execute_batch`` / ``add_document`` / ``build_index`` / ``describe``)
but fans every query out to the shards of a
:class:`~repro.shard.collection.ShardedCollection` on a
``ThreadPoolExecutor`` and gathers the partial answers into one
cost-accounted :class:`~repro.planner.evaluator.QueryResult`:

* **scatter** — each relevant shard evaluates the query through its own
  :class:`~repro.service.QueryService`, so per-shard plan caches,
  result caches, generation fingerprints and ``strategy="auto"``
  choices all apply per shard (a shard prices its plan against its own
  catalog statistics, and an ``add_document`` on one shard invalidates
  only that shard's cached results); a replicated shard
  (:class:`~repro.shard.replica.ReplicatedShard`) additionally fans the
  read to one of its replicas through its read picker;
* **prune** — a query scoped to named documents (``documents=[...]``)
  is sent only to the shards holding them, and its answer is filtered
  to those documents' id intervals;
* **gather** — shard-local answer ids are translated into the global id
  space through the routing table
  (:class:`~repro.shard.topology.ShardTopology`), merged in ascending
  (document-order) sequence, and the per-shard cost counters are
  summed through :func:`~repro.storage.stats.sum_snapshots` so the
  merged result prices exactly the logical work all shards charged.

The scatter set and every id translation come from the collection's
topology — the versioned routing table — so online rebalancing
(:meth:`ShardedQueryService.rebalance` /
:meth:`ShardedQueryService.move_document`) re-routes documents under
running queries: a move swaps the routing entry atomically, keeps the
document's global id interval, and invalidates only the two shards it
touched.

The merged answer is *identical* to what a single-engine database
holding the same documents (in the same arrival order) would return —
the shard-equivalence differential tests pin this across shard counts,
placement policies and strategies.

**Consistency model.**  Each per-shard partial answer is a consistent
snapshot of its shard (execution serializes against that shard's writes
on the shard service's lock), but there is no global read snapshot
across shards: a query racing concurrent ``add_document`` calls may
observe different shards at different write watermarks.  Every answer
is therefore a *consistent cut* — for each shard, a prefix of that
shard's add sequence — rather than a prefix of the global add sequence;
once writes quiesce, answers are exact.  This is the standard
scatter-gather contract (a global snapshot would serialize every query
against every write, forfeiting the isolation the sharding buys), and
the concurrency tests assert exactly it.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import as_completed
from typing import Iterable, Optional, Sequence, Union

from ..errors import DocumentError
from ..obs import Telemetry
from ..obs.clock import now as _now
from ..planner.evaluator import QueryResult
from ..query.parser import parse_xpath
from ..query.twig import TwigPattern
from ..storage.stats import sum_snapshots
from ..xmltree.document import Document
from ..service.base import AUTO_STRATEGY, ServingFacade
from .collection import (
    AutoRebalancer,
    DocumentPlacement,
    RebalanceMove,
    RebalanceReport,
    Shard,
    ShardedCollection,
)
from .placement import PlacementPolicy
from .replica import ReadPicker
from .scatter import ScatterPool, make_scatter_pool


class ShardedQueryService(ServingFacade):
    """A scatter-gather serving facade over a :class:`ShardedCollection`."""

    def __init__(
        self,
        collection: Optional[ShardedCollection] = None,
        num_shards: int = 4,
        placement: Union[str, PlacementPolicy] = "hash",
        replicas: int = 1,
        read_picker: Union[str, ReadPicker] = "round_robin",
        max_workers: Optional[int] = None,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl: Optional[float] = None,
        auto_rebalance: bool = False,
        rebalance_policy: Union[str, PlacementPolicy, None] = None,
        rebalance_high_watermark: float = 2.0,
        rebalance_low_watermark: float = 1.25,
        rebalance_interval: int = 8,
        rebalance_min_documents: Optional[int] = None,
        rebalance_background: bool = True,
        telemetry: Optional[Telemetry] = None,
        use_kernels: bool = True,
        scatter: Union[str, ScatterPool] = "pipelined",
    ) -> None:
        if collection is None:
            collection = ShardedCollection(
                num_shards=num_shards,
                placement=placement,
                replicas=replicas,
                read_picker=read_picker,
                plan_cache_size=plan_cache_size,
                result_cache_size=result_cache_size,
                result_cache_ttl=result_cache_ttl,
                telemetry=telemetry,
                use_kernels=use_kernels,
            )
        self.collection = collection
        #: Adopt the collection's hub: shards, replicas and per-replica
        #: services already share it, so the scatter spans this facade
        #: opens become parents of the spans those layers open.
        self.telemetry = collection.telemetry
        #: How per-shard legs map onto worker threads.  ``"pipelined"``
        #: (default) gives every shard its own lane — sized by its
        #: replica count, since replicas read in parallel — so legs
        #: from *different* concurrent queries interleave per shard and
        #: all shards stay busy whenever any query has work.
        #: ``"pooled"`` is the legacy shared FIFO pool (the baseline
        #: the front-door bench measures against).
        self.scatter_pool = make_scatter_pool(
            scatter,
            self.collection.num_shards,
            lanes=[shard.replica_count for shard in self.collection.shards],
            max_workers=max_workers,
        )
        #: The self-driving rebalance trigger; off unless
        #: ``auto_rebalance=True``.  ``execute`` ticks it after every
        #: query, so skew checks run *between* queries — never on a
        #: scatter path — and a triggered ``rebalance(policy)`` runs on
        #: the trigger's own background worker while queries keep
        #: flowing (set ``rebalance_background=False`` to run it inline
        #: on the triggering query's thread, which tests use for
        #: determinism).
        self.operations = AutoRebalancer(
            self.collection,
            policy=rebalance_policy,
            high_watermark=rebalance_high_watermark,
            low_watermark=rebalance_low_watermark,
            check_interval=rebalance_interval,
            min_documents=rebalance_min_documents,
            background=rebalance_background,
            enabled=auto_rebalance,
        )
        self.queries_executed = 0
        self._counter_lock = threading.Lock()

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[Document],
        num_shards: int = 4,
        placement: Union[str, PlacementPolicy] = "hash",
        **options,
    ) -> "ShardedQueryService":
        """Build a sharded service and load ``documents`` in order."""
        service = cls(num_shards=num_shards, placement=placement, **options)
        for document in documents:
            service.add_document(document)
        return service

    # ------------------------------------------------------------------
    # Facade mirror: loading and index management
    # ------------------------------------------------------------------
    def add_document(self, document: Document) -> Document:
        """Route one document to its shard (see :meth:`ShardedCollection.add_document`)."""
        self.collection.add_document(document)
        return document

    def remove_document(self, name: str) -> DocumentPlacement:
        """Remove the named document from its owning shard.

        Routing, incremental index deletion and span retirement are
        :meth:`ShardedCollection.remove_document`'s contract; only the
        owning shard's caches are invalidated, and the merged answer
        stream stays identical to a single engine that performed the
        same removal.  Returns the retired placement.
        """
        return self.collection.remove_document(name)

    def replace_document(self, name: str, replacement: Document) -> DocumentPlacement:
        """Replace the named document (remove + re-add through placement).

        Weaker atomicity than the single-engine facade: the two halves
        run under the owning shards' own locks, not one global lock, so
        a racing query may observe the document absent between them —
        see :meth:`ShardedCollection.replace_document`.
        """
        return self.collection.replace_document(name, replacement)

    # ------------------------------------------------------------------
    # Facade mirror: topology maintenance (online rebalancing)
    # ------------------------------------------------------------------
    def move_document(
        self, ref: Union[DocumentPlacement, str], target_shard: int
    ) -> DocumentPlacement:
        """Move one live document to another shard, online.

        Remove-from-source + add-to-target through the shards'
        incremental index maintenance, with the routing entry swapped
        atomically and the global id interval preserved — see
        :meth:`ShardedCollection.move_document`.  Answers stay
        identical to a single engine throughout.
        """
        return self.collection.move_document(ref, target_shard)

    def plan_rebalance(
        self, policy: Union[str, PlacementPolicy, None] = None
    ) -> list[RebalanceMove]:
        """The (deterministic) move plan ``rebalance`` would apply."""
        return self.collection.plan_rebalance(policy)

    def rebalance(
        self,
        policy: Union[str, PlacementPolicy, None] = None,
        compact: bool = False,
    ) -> RebalanceReport:
        """Re-place the corpus under ``policy`` (default size-balanced).

        Applies :meth:`plan_rebalance` move by move while queries keep
        running; each move invalidates only the two shards it touches.
        See :meth:`ShardedCollection.rebalance` for the report and the
        ``compact`` trade-off.
        """
        return self.collection.rebalance(policy, compact=compact)

    def compact(self) -> int:
        """Prune retired placement spans (see :meth:`ShardedCollection.compact`)."""
        return self.collection.compact()

    def revive_replica(self, shard_index: int, replica_index: int):
        """Re-sync one quarantined replica from its shard's write log.

        The recovery half of failover — see
        :meth:`~repro.shard.replica.ReplicatedShard.revive`.  Raises
        for a plain (unreplicated) shard.
        """
        if not 0 <= shard_index < self.collection.num_shards:
            raise DocumentError(
                f"shard index {shard_index} outside "
                f"[0, {self.collection.num_shards})"
            )
        shard = self.collection.shards[shard_index]
        reviver = getattr(shard, "revive", None)
        if reviver is None:
            raise DocumentError(
                f"shard {shard_index} is not replicated; nothing to revive"
            )
        return reviver(replica_index)

    def build_index(self, name: str, **options) -> None:
        """Build one index of the family on every shard."""
        self.collection.build_index(name, **options)

    def ensure_indexes_for(self, strategy_name: str) -> None:
        """Build the indexes one strategy needs, on every shard."""
        self.collection.ensure_indexes_for(strategy_name)

    def invalidate(self, rebuilt: bool = True) -> None:
        """Flush every shard's service caches (every replica's, too)."""
        for shard in self.collection.shards:
            shard.invalidate(rebuilt=rebuilt)

    def generation(self) -> tuple:
        """A cheap fingerprint of everything that can change answers.

        The topology epoch (placements, moves, rebalances) plus every
        shard's service generation (documents, index builds and
        maintenance).  Read lock-free — see
        :meth:`QueryService.generation
        <repro.service.QueryService.generation>` for the contract: any
        client-visible write is reflected in every later read, which is
        exactly what the front door's coalescing key needs.
        """
        return (self.collection.topology.epoch,) + tuple(
            shard.generation() for shard in self.collection.shards
        )

    # ------------------------------------------------------------------
    # Execution: scatter, prune, gather
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        documents: Optional[Sequence[str]] = None,
        query_id: Optional[str] = None,
        **strategy_options,
    ) -> QueryResult:
        """Evaluate one query across the shards and merge the answers.

        ``documents`` scopes the query to the named documents: only the
        shards holding them are scattered to (shard pruning) and the
        merged answer contains matches from those documents alone.
        ``strategy`` and the caching knobs apply per shard —
        ``"auto"`` in particular lets every shard pick the plan its own
        statistics price cheapest.  ``query_id`` names the request in
        the query's trace (and in every shard's and replica's child
        spans), so batch items and slow-query entries attribute back to
        it.
        """
        started = _now()
        xpath = query if isinstance(query, str) else query.to_xpath()
        attributes = {"tier": "sharded", "xpath": xpath}
        if query_id is not None:
            attributes["query_id"] = query_id
        with self.telemetry.span("query", **attributes) as root:
            targets = self._target_shards(documents)
            with self.telemetry.span("scatter", shards=len(targets)):
                partials = self._scatter(
                    targets, xpath, strategy, use_result_cache, strategy_options,
                    query_id=query_id,
                )
            with self.telemetry.span("gather"):
                result = self._gather(xpath, strategy, targets, partials, started)
            root.annotate(
                strategy=result.strategy, cached=result.cached, ids=len(result.ids)
            )
        self.telemetry.record_query(
            "sharded", result.strategy, root.duration_seconds, result.cached
        )
        with self._counter_lock:
            self.queries_executed += 1
        # The between-queries heartbeat of the self-driving tier: the
        # answer is already gathered, so a due skew check (and an
        # inline-mode rebalance) delays only the turnaround of this
        # call, never a scatter in flight.
        self.operations.tick()
        return result

    def _target_shards(
        self, documents: Optional[Sequence[str]]
    ) -> list[tuple[Shard, Optional[list[DocumentPlacement]]]]:
        """The scatter set: (shard, scope placements or None) pairs.

        Both flavours consult the routing table: an unscoped query
        scatters to the shards the topology routes live documents to
        (shards holding none cannot contribute matches, so they are
        always pruned), a scoped query only to the shards holding the
        named documents.  ``None`` scope means the whole shard is in
        scope.
        """
        if documents is None:
            live_counts = self.collection.topology.live_counts()
            return [
                (shard, None)
                for shard, count in zip(self.collection.shards, live_counts)
                if count
            ]
        by_shard = self.collection.shards_for_documents(documents)
        return [
            (self.collection.shards[index], placements)
            for index, placements in sorted(by_shard.items())
        ]

    def _scatter(
        self,
        targets: list[tuple[Shard, Optional[list[DocumentPlacement]]]],
        xpath: str,
        strategy: str,
        use_result_cache: bool,
        strategy_options: dict,
        query_id: Optional[str] = None,
    ) -> list[QueryResult]:
        """Run the query on every target shard, in parallel past one.

        Routing through the shard surface (not ``shard.service``
        directly) is what lets a replicated shard fan the read out to
        one of its replicas.  Each per-shard leg runs under its own
        ``shard`` span.  Context variables do not cross
        ``ThreadPoolExecutor.submit`` by themselves (the worker runs in
        whatever context it last had), so each parallel leg is
        submitted through a fresh ``contextvars.copy_context()``: the
        worker sees this thread's current span as the parent, child
        spans attach to the right trace, and sibling workers'
        context operations cannot interfere because each mutates its
        private copy (appending to the shared parent's child list is a
        single atomic list operation).

        Legs are gathered *as they complete*, not in submission order:
        the first failing leg is observed as soon as it fails, every
        not-yet-started leg is cancelled, and the error is re-raised
        after the already-running legs drain — a fast-failing later
        shard no longer waits behind every earlier shard, and no leg's
        exception is ever dropped.
        """
        def run(shard: Shard) -> QueryResult:
            with self.telemetry.span("shard", shard=shard.index) as span:
                result = shard.execute(
                    xpath,
                    strategy=strategy,
                    use_result_cache=use_result_cache,
                    query_id=query_id,
                    **strategy_options,
                )
                span.annotate(strategy=result.strategy, cached=result.cached)
                return result

        if len(targets) <= 1:
            # No gain from thread hand-off for a pruned or single-shard
            # scatter; run inline.
            return [run(shard) for shard, _ in targets]
        positions = {
            self.scatter_pool.submit(
                shard.index, contextvars.copy_context().run, run, shard
            ): position
            for position, (shard, _) in enumerate(targets)
        }
        partials: list[Optional[QueryResult]] = [None] * len(targets)
        first_error: Optional[BaseException] = None
        for future in as_completed(positions):
            if future.cancelled():
                continue
            error = future.exception()
            if error is not None:
                if first_error is None:
                    first_error = error
                    # Stop legs that have not started; running ones
                    # drain through this loop so none is abandoned.
                    for pending in positions:
                        pending.cancel()
                continue
            partials[positions[future]] = future.result()
        if first_error is not None:
            raise first_error
        return partials

    def _gather(
        self,
        xpath: str,
        strategy: str,
        targets: list[tuple[Shard, Optional[list[DocumentPlacement]]]],
        partials: list[QueryResult],
        started: float,
    ) -> QueryResult:
        """Translate, filter and merge per-shard answers into one result."""
        merged_ids: list[int] = []
        for (shard, scope), partial in zip(targets, partials):
            merged_ids.extend(
                self.collection.translate_sorted(
                    shard.index, sorted(partial.ids), scope=scope
                )
            )
        # Global ids are assigned in document-arrival order, so ascending
        # id order is global document order — what a single engine
        # returns.  The set() dedup covers one race: a scatter crossing
        # an in-flight move can observe the moving document on both its
        # source and target shard, and both observations translate to
        # the same global interval (quiesced scatters never produce
        # duplicates — global spans are disjoint).
        merged_ids = sorted(set(merged_ids))
        strategies = {partial.strategy for partial in partials}
        if not strategies:
            merged_strategy = strategy
        elif len(strategies) == 1:
            merged_strategy = next(iter(strategies))
        else:
            merged_strategy = "mixed(" + ",".join(sorted(strategies)) + ")"
        return QueryResult(
            strategy=merged_strategy,
            xpath=xpath,
            ids=merged_ids,
            elapsed_seconds=_now() - started,
            cost=sum_snapshots(*(partial.cost for partial in partials)),
            cached=bool(partials) and all(partial.cached for partial in partials),
        )

    # ------------------------------------------------------------------
    # Oracle (differential testing and examples)
    # ------------------------------------------------------------------
    def oracle(
        self, query: Union[str, TwigPattern], documents: Optional[Sequence[str]] = None
    ) -> list[int]:
        """Index-free ground truth, merged across shards into global ids."""
        twig = parse_xpath(query) if isinstance(query, str) else query
        targets = self._target_shards(documents)
        merged: list[int] = []
        for shard, scope in targets:
            ids = shard.oracle_ids(twig)
            merged.extend(
                self.collection.translate_sorted(shard.index, sorted(ids), scope=scope)
            )
        merged.sort()
        return merged

    # ------------------------------------------------------------------
    # Stats hooks for the shared batch loop
    # ------------------------------------------------------------------
    def _stats_snapshot(self):
        # A replicated shard's snapshot folds its replicas together via
        # StatsCollector.merge, so replica write amplification is priced.
        # The trailing entry is the auto-rebalance trigger's own
        # collector, so a batch that fires one shows it in its deltas.
        snapshots = [shard.stats_snapshot() for shard in self.collection.shards]
        snapshots.append(self.operations.stats.snapshot())
        return snapshots

    def _stats_diff(self, before) -> dict[str, int]:
        *shard_snapshots, operations_snapshot = before
        diffs = [
            shard.stats_diff(snapshot)
            for shard, snapshot in zip(self.collection.shards, shard_snapshots)
        ]
        diffs.append(self.operations.stats.diff(operations_snapshot))
        return sum_snapshots(*diffs)

    # ------------------------------------------------------------------
    # Observability scrape hooks
    # ------------------------------------------------------------------
    def _activity_counters(self) -> dict[str, int]:
        """All shards' + the rebalancer's counters, summed for the scrape."""
        return sum_snapshots(
            self.operations.stats.snapshot(),
            *(shard.stats_snapshot() for shard in self.collection.shards),
        )

    def _cache_reports(self) -> dict[str, dict[str, object]]:
        reports: dict[str, dict[str, object]] = {}
        for shard in self.collection.shards:
            service_report = shard.service_report()
            for cache_name, short in (
                ("plan_cache", "plan"),
                ("result_cache", "result"),
                ("choice_cache", "choice"),
            ):
                reports[f"shard{shard.index}-{short}"] = service_report[cache_name]
        return reports

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Topology, per-shard summaries and aggregated cache counters."""
        report = self.collection.describe()
        report["telemetry"] = self.telemetry.describe()
        shard_reports = [shard["service"] for shard in report["shards"]]
        aggregated: dict[str, dict[str, int]] = {}
        for cache_name in ("plan_cache", "result_cache", "choice_cache"):
            aggregated[cache_name] = {
                counter: sum(r[cache_name][counter] for r in shard_reports)
                for counter in (
                    "size",
                    "hits",
                    "misses",
                    "evictions",
                    "expiries",
                    "clears",
                    "cleared_entries",
                )
            }
        report["caches"] = aggregated
        report["invalidations"] = {
            "total": sum(r["invalidations"] for r in shard_reports),
            "result_only": sum(r["result_invalidations"] for r in shard_reports),
            "full": sum(r["full_invalidations"] for r in shard_reports),
        }
        report["maintenance"] = {
            counter: sum(r["maintenance"][counter] for r in shard_reports)
            for counter in (
                "documents_added",
                "documents_removed",
                "index_builds",
                "index_updates",
            )
        }
        # A replace decomposes into a remove + an add at the shard
        # services (the halves may even land on different shards), so
        # the per-shard counters record the decomposition; the
        # collection counts the operation as itself.  Moves decompose
        # the same way — the topology's counter is the operation-level
        # truth.
        report["maintenance"]["documents_replaced"] = (
            self.collection.documents_replaced
        )
        report["maintenance"]["documents_moved"] = (
            self.collection.topology.documents_moved
        )
        if self.collection.replica_count > 1:
            report["replica_reads"] = {
                "picker": self.collection.shards[0].picker.name,
                "per_shard": [
                    list(shard.replica_reads) for shard in self.collection.shards
                ],
                "total": sum(
                    sum(shard.replica_reads) for shard in self.collection.shards
                ),
            }
        report["queries_executed"] = self.queries_executed
        report["scatter"] = self.scatter_pool.name
        report["operations"] = {
            "auto_rebalance": self.operations.describe(),
            "failover": self._failover_report(),
        }
        return report

    def _failover_report(self) -> dict[str, object]:
        """Replica health and failover activity, aggregated over shards."""
        per_shard = [shard.health_report() for shard in self.collection.shards]
        return {
            "per_shard": per_shard,
            "reads_retried": sum(r["reads_retried"] for r in per_shard),
            "replicas_failed": sum(r["replicas_failed"] for r in per_shard),
            "replicas_revived": sum(r["replicas_revived"] for r in per_shard),
        }

    def close(self) -> None:
        """Drain the operations worker, then the scatter pool (idempotent).

        Inherited ``__enter__`` / ``__exit__`` (see
        :class:`~repro.service.base.ServingFacade`) make the service a
        context manager, so ``with ShardedQueryService(...) as service``
        releases every worker thread on the way out.
        """
        self.operations.close()
        self.scatter_pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedQueryService(shards={self.collection.num_shards}, "
            f"placement={self.collection.placement.name!r}, "
            f"documents={self.collection.document_count})"
        )
