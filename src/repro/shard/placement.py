"""Pluggable document-to-shard placement policies.

A :class:`ShardedCollection` asks its policy where each incoming
document should live.  Policies see the document, its arrival ordinal
and the current per-shard node-count weights, and return a shard index;
they never move documents themselves — but the same ``choose`` replay
drives :meth:`~repro.shard.collection.ShardedCollection.plan_rebalance`,
which computes the moves that re-place an already loaded corpus under a
policy (node ids inside a shard are assigned at add time and query
answers are translated through the recorded spans, so a move just gives
a document a fresh local interval on its new shard).

Three policies cover the usual trade-offs:

* :class:`HashPlacement` — deterministic by document name (CRC32, not
  Python's seeded ``hash``), so the same corpus lands the same way
  across processes and restarts;
* :class:`RoundRobinPlacement` — arrival order modulo shard count,
  maximally even document *counts*;
* :class:`SizeBalancedPlacement` — least-loaded by node count, evening
  out *data volume* when document sizes are skewed.
"""

from __future__ import annotations

import zlib
from typing import Sequence, Union

from ..errors import DocumentError
from ..xmltree.document import Document


class PlacementPolicy:
    """Strategy interface: pick the shard an incoming document joins."""

    #: Registry name (also what ``describe()`` reports).
    name = "abstract"

    def choose(
        self, document: Document, ordinal: int, shard_weights: Sequence[int]
    ) -> int:
        """The target shard index for one document.

        Parameters
        ----------
        document:
            The incoming (not yet numbered) document.
        ordinal:
            Zero-based arrival position across the whole collection.
        shard_weights:
            Current node-count watermark per shard; ``len(shard_weights)``
            is the shard count.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class HashPlacement(PlacementPolicy):
    """Deterministic placement by CRC32 of the document name.

    Unnamed documents fall back to their arrival ordinal so they still
    spread instead of piling onto the hash of the empty string.
    """

    name = "hash"

    def choose(
        self, document: Document, ordinal: int, shard_weights: Sequence[int]
    ) -> int:
        key = document.name or f"#{ordinal}"
        return zlib.crc32(key.encode("utf-8")) % len(shard_weights)


class RoundRobinPlacement(PlacementPolicy):
    """Arrival ordinal modulo shard count — even document counts."""

    name = "round_robin"

    def choose(
        self, document: Document, ordinal: int, shard_weights: Sequence[int]
    ) -> int:
        return ordinal % len(shard_weights)


class SizeBalancedPlacement(PlacementPolicy):
    """Least-loaded shard by node count (lowest index breaks ties).

    The tie-break is part of the contract, not an accident: equal
    weights always resolve to the lowest shard index, so a rebalance
    plan replayed over the same corpus is identical run to run
    (``tests/test_shard_topology.py`` pins this determinism).
    """

    name = "size_balanced"

    def choose(
        self, document: Document, ordinal: int, shard_weights: Sequence[int]
    ) -> int:
        return min(range(len(shard_weights)), key=lambda i: (shard_weights[i], i))


#: Registry of policy name -> policy class.
PLACEMENT_POLICIES: dict[str, type[PlacementPolicy]] = {
    HashPlacement.name: HashPlacement,
    RoundRobinPlacement.name: RoundRobinPlacement,
    SizeBalancedPlacement.name: SizeBalancedPlacement,
}


def make_placement(policy: Union[str, PlacementPolicy]) -> PlacementPolicy:
    """Resolve a policy name or pass an instance through."""
    if isinstance(policy, PlacementPolicy):
        return policy
    try:
        return PLACEMENT_POLICIES[policy]()
    except KeyError:
        raise DocumentError(
            f"unknown placement policy {policy!r}; "
            f"known: {sorted(PLACEMENT_POLICIES)}"
        ) from None
