"""The experimental query workload (Figures 7, 8 and 10).

Each :class:`WorkloadQuery` mirrors one query of the paper's workload,
rewritten against the synthetic XMark-like / DBLP-like datasets of
:mod:`repro.datasets` (same schema paths, same selectivity classes).
The grouping attributes reproduce Figure 10: number of branches,
selectivity class per branch, branch depth (high vs low branch points)
and number of recursions.

``recursive_variant`` turns a query into its Section 5.2.4 counterpart
(the same query with a leading ``//``), used by the recursion-overhead
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload query with its Figure 10 classification."""

    qid: str
    dataset: str
    xpath: str
    branches: int
    selectivity: str
    branch_depth: str
    recursions: int
    figure: str
    description: str = ""

    def recursive_variant(self) -> str:
        """The same query with a leading ``//`` (Section 5.2.4)."""
        if self.xpath.startswith("//"):
            return self.xpath
        return "/" + self.xpath
        # ``/site/...`` becomes ``//site/...`` — one extra leading slash.


# ----------------------------------------------------------------------
# Single-path queries: Figure 11 (Q1–Q3 on XMark and DBLP)
# ----------------------------------------------------------------------
SINGLE_PATH_QUERIES = (
    WorkloadQuery(
        "Q1x", "xmark", "/site/regions/namerica/item/quantity[. = '5']",
        1, "selective", "-", 0, "fig11", "highly selective single path (XMark)",
    ),
    WorkloadQuery(
        "Q2x", "xmark", "/site/regions/namerica/item/quantity[. = '2']",
        1, "moderate", "-", 0, "fig11", "moderately selective single path (XMark)",
    ),
    WorkloadQuery(
        "Q3x", "xmark", "/site/regions/namerica/item/quantity[. = '1']",
        1, "unselective", "-", 0, "fig11", "unselective single path (XMark)",
    ),
    WorkloadQuery(
        "Q1d", "dblp", "/dblp/inproceedings/year[. = '1950']",
        1, "selective", "-", 0, "fig11", "highly selective single path (DBLP)",
    ),
    WorkloadQuery(
        "Q2d", "dblp", "/dblp/inproceedings/year[. = '1979']",
        1, "moderate", "-", 0, "fig11", "moderately selective single path (DBLP)",
    ),
    WorkloadQuery(
        "Q3d", "dblp", "/dblp/inproceedings/year[. = '1998']",
        1, "unselective", "-", 0, "fig11", "unselective single path (DBLP)",
    ),
)

# ----------------------------------------------------------------------
# Twig queries with high branch points: Figure 12(a)-(c)
# ----------------------------------------------------------------------
#: Single selective branch used as the 1-branch baseline in Figure 12(a).
SELECTIVE_BRANCH_BASELINE = WorkloadQuery(
    "Q4x-base", "xmark", "/site[people/person/profile/@income = '46814.17']",
    1, "selective", "high", 0, "fig12a", "single selective branch baseline",
)

TWIG_HIGH_BRANCH_QUERIES = (
    WorkloadQuery(
        "Q4x", "xmark",
        "/site[people/person/profile/@income = '46814.17']"
        "/open_auctions/open_auction[@increase = '75.00']",
        2, "selective", "high", 0, "fig12a", "two selective branches",
    ),
    WorkloadQuery(
        "Q5x", "xmark",
        "/site[people/person/profile/@income = '46814.17']"
        "[people/person/name = 'Hagen Artosi']"
        "/open_auctions/open_auction[@increase = '75.00']",
        3, "selective", "high", 0, "fig12a", "three selective branches",
    ),
    WorkloadQuery(
        "Q6x", "xmark",
        "/site[people/person/profile/@income = '9876.00']"
        "/open_auctions/open_auction[@increase = '75.00']",
        2, "mixed", "high", 0, "fig12b", "selective + unselective branches",
    ),
    WorkloadQuery(
        "Q7x", "xmark",
        "/site[people/person/profile/@income = '9876.00']"
        "[regions/namerica/item/location = 'united states']"
        "/open_auctions/open_auction[@increase = '75.00']",
        3, "mixed", "high", 0, "fig12b", "selective + two unselective branches",
    ),
    WorkloadQuery(
        "Q8x", "xmark",
        "/site[people/person/profile/@income = '9876.00']"
        "/open_auctions/open_auction[@increase = '3.00']",
        2, "unselective", "high", 0, "fig12c", "two unselective branches",
    ),
    WorkloadQuery(
        "Q9x", "xmark",
        "/site[people/person/profile/@income = '9876.00']"
        "[regions/namerica/item/location = 'united states']"
        "/open_auctions/open_auction[@increase = '3.00']",
        3, "unselective", "high", 0, "fig12c", "three unselective branches",
    ),
)

# ----------------------------------------------------------------------
# Twig queries with low branch points: Figure 12(d)
# ----------------------------------------------------------------------
TWIG_LOW_BRANCH_QUERIES = (
    WorkloadQuery(
        "Q10x", "xmark",
        "/site/open_auctions/open_auction"
        "[annotation/author/@person = 'person22082']/time",
        2, "mixed", "low", 0, "fig12d", "selective branch, unselective output, low branch point",
    ),
    WorkloadQuery(
        "Q11x", "xmark",
        "/site/open_auctions/open_auction"
        "[annotation/author/@person = 'person22082']"
        "[bidder/@increase = '3.00']/time",
        3, "mixed", "low", 0, "fig12d", "three branches, low branch point",
    ),
)

# ----------------------------------------------------------------------
# Recursive branch-point queries: Figure 13 / Figure 8
# ----------------------------------------------------------------------
RECURSIVE_TWIG_QUERIES = (
    WorkloadQuery(
        "Q12x", "xmark",
        "/site//item[incategory/category = 'category440']/mailbox/mail/date",
        2, "mixed", "low", 1, "fig13a", "recursive item branch, selective + unselective",
    ),
    WorkloadQuery(
        "Q13x", "xmark",
        "/site//item[incategory/category = 'category440']"
        "[mailbox/mail/date]/mailbox/mail/to",
        3, "mixed", "low", 1, "fig13a", "recursive item branch, three branches",
    ),
    WorkloadQuery(
        "Q14x", "xmark",
        "/site//item[quantity = '2'][location = 'United States']",
        2, "unselective", "low", 1, "fig13b", "recursive item branch, unselective",
    ),
    WorkloadQuery(
        "Q15x", "xmark",
        "/site//item[quantity = '2'][location = 'United States']/mailbox/mail/to",
        3, "unselective", "low", 1, "fig13b", "recursive item branch, three unselective branches",
    ),
)

#: Every workload query, in paper order.
ALL_QUERIES: tuple[WorkloadQuery, ...] = (
    SINGLE_PATH_QUERIES
    + (SELECTIVE_BRANCH_BASELINE,)
    + TWIG_HIGH_BRANCH_QUERIES
    + TWIG_LOW_BRANCH_QUERIES
    + RECURSIVE_TWIG_QUERIES
)

QUERIES_BY_ID: dict[str, WorkloadQuery] = {query.qid: query for query in ALL_QUERIES}


def query(qid: str) -> WorkloadQuery:
    """Look a workload query up by its id (``Q1x`` ... ``Q15x``, ``Q1d``...)."""
    return QUERIES_BY_ID[qid]


def queries_for_dataset(dataset: str) -> list[WorkloadQuery]:
    """All workload queries that run against one dataset."""
    return [q for q in ALL_QUERIES if q.dataset == dataset]


def queries_for_figure(figure: str) -> list[WorkloadQuery]:
    """All workload queries contributing to one figure of the paper."""
    return [q for q in ALL_QUERIES if q.figure == figure]


def make_recursive(xpath: str) -> str:
    """Turn ``/site/...`` into ``//site/...`` (Section 5.2.4 variants)."""
    if xpath.startswith("//"):
        return xpath
    if xpath.startswith("/"):
        return "/" + xpath
    return "//" + xpath
