"""Parameterised twig query generation.

Section 5.1.1: "We used a workload of XPath queries, and varied the
parameters of the query such as the number of branches, the selectivity
of each branch, and the depth of branches."  The fixed catalog in
:mod:`repro.workloads.queries` lists the paper's concrete queries; this
module generates *families* of queries along those same axes so tests
and ablation benches can sweep them programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import WorkloadError

#: Branch templates against the XMark-like dataset, grouped by
#: selectivity class.  Each template is the predicate text of one branch.
XMARK_BRANCHES = {
    "selective": (
        "people/person/profile/@income = '46814.17'",
        "people/person/name = 'Hagen Artosi'",
        "open_auctions/open_auction/annotation/author/@person = 'person22082'",
    ),
    "moderate": (
        "regions/namerica/item/quantity = '2'",
        "open_auctions/open_auction/@increase = '75.00'",
    ),
    "unselective": (
        "people/person/profile/@income = '9876.00'",
        "regions/namerica/item/location = 'united states'",
        "open_auctions/open_auction/@increase = '3.00'",
    ),
}

#: Trunks (output paths) against the XMark-like dataset, by branch depth.
XMARK_TRUNKS = {
    "high": "/site",
    "low": "/site/open_auctions/open_auction",
}

#: Branch templates usable below the low (open_auction) branch point.
XMARK_LOW_BRANCHES = {
    "selective": ("annotation/author/@person = 'person22082'",),
    "unselective": ("bidder/@increase = '3.00'", "@increase = '3.00'"),
}


@dataclass(frozen=True)
class GeneratedQuery:
    """A generated query plus the parameters that produced it."""

    xpath: str
    branches: int
    selectivities: tuple[str, ...]
    branch_depth: str


def generate_twig(
    branches: int,
    selectivities: Sequence[str],
    branch_depth: str = "high",
    output_suffix: str = "",
) -> GeneratedQuery:
    """Build a twig query with the requested shape.

    Parameters
    ----------
    branches:
        Number of predicate branches (1-3 for high branch points).
    selectivities:
        Selectivity class per branch (``selective`` / ``moderate`` /
        ``unselective``); its length must equal ``branches``.
    branch_depth:
        ``high`` attaches branches at ``/site``; ``low`` attaches them
        at ``/site/open_auctions/open_auction``.
    output_suffix:
        Optional extra trunk step below the branch point (for example
        ``/time`` for the Figure 12(d) queries).
    """
    if len(selectivities) != branches:
        raise WorkloadError("one selectivity class is required per branch")
    if branch_depth not in XMARK_TRUNKS:
        raise WorkloadError(f"unknown branch depth {branch_depth!r}")
    pool = XMARK_BRANCHES if branch_depth == "high" else XMARK_LOW_BRANCHES
    used: list[str] = []
    predicates = []
    for selectivity in selectivities:
        try:
            candidates = pool[selectivity]
        except KeyError:
            raise WorkloadError(f"unknown selectivity class {selectivity!r}") from None
        choice = next((c for c in candidates if c not in used), None)
        if choice is None:
            raise WorkloadError(
                f"not enough distinct {selectivity!r} branches for {branches} branches"
            )
        used.append(choice)
        predicates.append(f"[{choice}]")
    xpath = XMARK_TRUNKS[branch_depth] + "".join(predicates) + output_suffix
    return GeneratedQuery(
        xpath=xpath,
        branches=branches,
        selectivities=tuple(selectivities),
        branch_depth=branch_depth,
    )


def branch_count_sweep(
    selectivity: str, max_branches: int = 3, branch_depth: str = "high"
) -> list[GeneratedQuery]:
    """The Figure 12 sweep: 1..max_branches branches of one selectivity class."""
    return [
        generate_twig(n, [selectivity] * n, branch_depth=branch_depth)
        for n in range(1, max_branches + 1)
    ]
