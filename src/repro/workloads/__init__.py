"""The experimental workload: the Q1–Q15 catalog, a query generator,
and the randomized corpus/query/churn generators behind the
differential fuzzer."""

from .fuzz import (
    clone_document,
    max_fanout_star,
    random_churn_ops,
    random_corpus,
    random_document,
    random_twig_xpath,
    self_nested_chain,
)
from .generator import (
    GeneratedQuery,
    XMARK_BRANCHES,
    XMARK_LOW_BRANCHES,
    XMARK_TRUNKS,
    branch_count_sweep,
    generate_twig,
)
from .queries import (
    ALL_QUERIES,
    QUERIES_BY_ID,
    RECURSIVE_TWIG_QUERIES,
    SELECTIVE_BRANCH_BASELINE,
    SINGLE_PATH_QUERIES,
    TWIG_HIGH_BRANCH_QUERIES,
    TWIG_LOW_BRANCH_QUERIES,
    WorkloadQuery,
    make_recursive,
    queries_for_dataset,
    queries_for_figure,
    query,
)

__all__ = [
    "ALL_QUERIES",
    "GeneratedQuery",
    "QUERIES_BY_ID",
    "RECURSIVE_TWIG_QUERIES",
    "SELECTIVE_BRANCH_BASELINE",
    "SINGLE_PATH_QUERIES",
    "TWIG_HIGH_BRANCH_QUERIES",
    "TWIG_LOW_BRANCH_QUERIES",
    "WorkloadQuery",
    "XMARK_BRANCHES",
    "XMARK_LOW_BRANCHES",
    "XMARK_TRUNKS",
    "branch_count_sweep",
    "clone_document",
    "generate_twig",
    "make_recursive",
    "max_fanout_star",
    "queries_for_dataset",
    "queries_for_figure",
    "query",
    "random_churn_ops",
    "random_corpus",
    "random_document",
    "random_twig_xpath",
    "self_nested_chain",
]
