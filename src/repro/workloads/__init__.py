"""The experimental workload: the Q1–Q15 catalog and a query generator."""

from .generator import (
    GeneratedQuery,
    XMARK_BRANCHES,
    XMARK_LOW_BRANCHES,
    XMARK_TRUNKS,
    branch_count_sweep,
    generate_twig,
)
from .queries import (
    ALL_QUERIES,
    QUERIES_BY_ID,
    RECURSIVE_TWIG_QUERIES,
    SELECTIVE_BRANCH_BASELINE,
    SINGLE_PATH_QUERIES,
    TWIG_HIGH_BRANCH_QUERIES,
    TWIG_LOW_BRANCH_QUERIES,
    WorkloadQuery,
    make_recursive,
    queries_for_dataset,
    queries_for_figure,
    query,
)

__all__ = [
    "ALL_QUERIES",
    "GeneratedQuery",
    "QUERIES_BY_ID",
    "RECURSIVE_TWIG_QUERIES",
    "SELECTIVE_BRANCH_BASELINE",
    "SINGLE_PATH_QUERIES",
    "TWIG_HIGH_BRANCH_QUERIES",
    "TWIG_LOW_BRANCH_QUERIES",
    "WorkloadQuery",
    "XMARK_BRANCHES",
    "XMARK_LOW_BRANCHES",
    "XMARK_TRUNKS",
    "branch_count_sweep",
    "generate_twig",
    "make_recursive",
    "queries_for_dataset",
    "queries_for_figure",
    "query",
]
