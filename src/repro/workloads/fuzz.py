"""Randomized corpora, twig queries and churn for the differential fuzzer.

The generators here feed ``tests/test_differential_fuzz.py``: small
random documents over a deliberately tiny tag/value alphabet (so
random twigs collide with real structure often enough to return
non-empty answers), two degenerate shapes the matching kernels must
survive (self-nested same-tag chains and max-fanout stars), random twig
queries sampled from *witness paths* of an actual corpus, and a random
document-churn schedule (add / remove / replace / move).

Everything is driven by an explicit :class:`random.Random` so a single
integer seed reproduces a whole fuzzing case end to end.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..xmltree.document import Document, VIRTUAL_ROOT_LABEL
from ..xmltree.nodes import Node, NodeKind

#: Tiny tag alphabet: random twigs must collide with random documents.
TAGS = ("a", "b", "c", "d", "e")
#: Root tags kept separate so absolute queries are meaningful.
ROOT_TAGS = ("r", "s")
#: Tiny value pool so value predicates select non-trivially.
VALUES = ("v0", "v1", "v2", "v3")


# ----------------------------------------------------------------------
# Degenerate shapes
# ----------------------------------------------------------------------
def self_nested_chain(
    depth: int, tag: str = "a", name: str = "chain", value: str = "v0"
) -> Document:
    """A chain of ``depth`` elements all labeled ``tag``.

    Every node is simultaneously an ancestor and a descendant match for
    the same label — the worst case for placement enumeration and for
    any structural-join that confuses self with descendant.  The leaf
    carries one value so value predicates reach the bottom.
    """
    if depth < 1:
        raise ValueError(f"chain depth must be positive: {depth}")
    root = Node(NodeKind.ELEMENT, tag)
    current = root
    for _ in range(depth - 1):
        current = current.add_child(Node(NodeKind.ELEMENT, tag))
    current.add_child(Node(NodeKind.VALUE, value))
    return Document(root, name=name)


def max_fanout_star(
    fanout: int, tag: str = "b", name: str = "star", root_tag: str = "r"
) -> Document:
    """One root with ``fanout`` identical leaf children.

    Maximal branching with zero depth: stresses candidate lists with
    many same-label siblings and per-(label, value) filtering.
    """
    if fanout < 1:
        raise ValueError(f"star fanout must be positive: {fanout}")
    root = Node(NodeKind.ELEMENT, root_tag)
    for index in range(fanout):
        child = root.add_child(Node(NodeKind.ELEMENT, tag))
        child.add_child(Node(NodeKind.VALUE, VALUES[index % len(VALUES)]))
    return Document(root, name=name)


# ----------------------------------------------------------------------
# Cloning (documents cannot be shared across databases)
# ----------------------------------------------------------------------
def clone_document(document: Document, name: Optional[str] = None) -> Document:
    """A deep copy with fresh :class:`Node` objects and unassigned ids.

    Adding a document to a database mutates it (node ids, the virtual
    root parent link), so differential harnesses that feed the same
    corpus to several systems must clone per system.
    """
    root = document.root
    fresh_root = Node(root.kind, root.label)
    stack = [(root, fresh_root)]
    while stack:
        original, copy = stack.pop()
        for child in original.children:
            fresh_child = copy.add_child(Node(child.kind, child.label))
            stack.append((child, fresh_child))
    return Document(fresh_root, name=document.name if name is None else name)


# ----------------------------------------------------------------------
# Random documents and corpora
# ----------------------------------------------------------------------
def random_document(
    rng: random.Random,
    name: str,
    max_depth: int = 5,
    max_children: int = 3,
) -> Document:
    """A random small document over the shared tag/value alphabet."""
    root = Node(NodeKind.ELEMENT, rng.choice(ROOT_TAGS))
    stack = [(root, 1)]
    while stack:
        node, depth = stack.pop()
        if rng.random() < 0.4:
            node.add_child(Node(NodeKind.VALUE, rng.choice(VALUES)))
        if rng.random() < 0.3:
            attribute = node.add_child(
                Node(NodeKind.ATTRIBUTE, rng.choice(TAGS))
            )
            attribute.add_child(Node(NodeKind.VALUE, rng.choice(VALUES)))
        if depth >= max_depth:
            continue
        for _ in range(rng.randrange(0, max_children + 1)):
            child = node.add_child(Node(NodeKind.ELEMENT, rng.choice(TAGS)))
            stack.append((child, depth + 1))
    return Document(root, name=name)


def random_corpus(
    rng: random.Random,
    documents: int = 3,
    max_depth: int = 5,
    max_children: int = 3,
    degenerate: bool = True,
) -> list[Document]:
    """A corpus of random documents, optionally seeded with the
    degenerate shapes (a same-tag chain and a max-fanout star)."""
    corpus = [
        random_document(
            rng, f"fuzz-{index}", max_depth=max_depth, max_children=max_children
        )
        for index in range(documents)
    ]
    if degenerate:
        corpus.append(
            self_nested_chain(
                rng.randrange(2, 9), tag=rng.choice(TAGS), name="fuzz-chain"
            )
        )
        corpus.append(max_fanout_star(rng.randrange(4, 17), name="fuzz-star"))
    return corpus


# ----------------------------------------------------------------------
# Random twig queries
# ----------------------------------------------------------------------
def random_twig_xpath(
    rng: random.Random, documents: Sequence[Document]
) -> str:
    """A random twig query biased toward structure that exists.

    A *witness path* is sampled from a random document's structural
    nodes; the trunk follows (a sampled subsequence of) that path, with
    random child/descendant axes, and 0–2 branch predicates hang off
    trunk steps — each a short label path, optionally with a value
    test.  Witness sampling only biases toward non-empty answers; axis
    loosening and random predicates keep empty answers common too.
    """
    document = rng.choice(list(documents))
    nodes = [n for n in document.root.iter_subtree() if n.is_structural]
    witness = rng.choice(nodes)
    # Documents already attached to a database gain the virtual root as
    # a parent; it is not addressable by queries.
    labels = [
        label
        for label in witness.root_path_labels()
        if label != VIRTUAL_ROOT_LABEL
    ]
    absolute = rng.random() < 0.5
    if not absolute and len(labels) > 1:
        start = rng.randrange(0, len(labels))
        labels = labels[start:]
    # Random axis per step; a descendant axis may also skip a step.
    steps: list[str] = []
    for index, label in enumerate(labels):
        if index == 0:
            steps.append(("/" if absolute else "//") + label)
            continue
        if rng.random() < 0.3:
            steps.append("//" + label)
        else:
            steps.append("/" + label)
    if len(steps) > 2 and rng.random() < 0.3:
        del steps[rng.randrange(1, len(steps) - 1)]
    # Branch predicates off random steps.
    predicates: dict[int, list[str]] = {}
    for _ in range(rng.randrange(0, 3)):
        anchor = rng.randrange(0, len(steps))
        length = rng.randrange(1, 3)
        branch_steps = []
        for position in range(length):
            label = rng.choice(TAGS)
            separator = "//" if rng.random() < 0.3 and position else "/"
            branch_steps.append((separator if position else "") + label)
        predicate = "".join(branch_steps)
        if rng.random() < 0.5:
            predicate += f" = '{rng.choice(VALUES)}'"
        predicates.setdefault(anchor, []).append(predicate)
    parts: list[str] = []
    for index, step in enumerate(steps):
        parts.append(step)
        for predicate in predicates.get(index, ()):
            parts.append(f"[{predicate}]")
    return "".join(parts)


# ----------------------------------------------------------------------
# Churn
# ----------------------------------------------------------------------
def random_churn_ops(
    rng: random.Random,
    live_names: Sequence[str],
    operations: int = 2,
    name_prefix: str = "churn",
    max_depth: int = 4,
    max_children: int = 3,
) -> list[tuple[str, str, Optional[Document]]]:
    """A random schedule of document mutations.

    Returns ``(op, name, document)`` triples where ``op`` is one of
    ``add`` (document is the new content), ``remove`` (document is
    ``None``), ``replace`` (new content under an existing name) or
    ``move`` (callers remove ``name`` and add ``document``, which
    carries a fresh name — a fused remove+add that exercises id-span
    reclamation and watermark renumbering in one step).  Names are
    drawn from ``live_names`` and the schedule is internally consistent
    (no double-removes); callers apply ops in order against every
    system under test.
    """
    live = list(live_names)
    ops: list[tuple[str, str, Optional[Document]]] = []
    counter = 0
    for _ in range(operations):
        choices = ["add"]
        if live:
            choices += ["remove", "replace", "move"]
        op = rng.choice(choices)
        if op == "add":
            name = f"{name_prefix}-{counter}"
            counter += 1
            ops.append(
                (
                    "add",
                    name,
                    random_document(
                        rng, name, max_depth=max_depth, max_children=max_children
                    ),
                )
            )
            live.append(name)
        elif op == "remove":
            name = live.pop(rng.randrange(len(live)))
            ops.append(("remove", name, None))
        elif op == "replace":
            name = rng.choice(live)
            ops.append(
                (
                    "replace",
                    name,
                    random_document(
                        rng, name, max_depth=max_depth, max_children=max_children
                    ),
                )
            )
        else:
            name = live.pop(rng.randrange(len(live)))
            moved = f"{name_prefix}-moved-{counter}"
            counter += 1
            ops.append(
                (
                    "move",
                    name,
                    random_document(
                        rng, moved, max_depth=max_depth, max_children=max_children
                    ),
                )
            )
            live.append(moved)
    return ops
