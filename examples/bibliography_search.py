"""Bibliography scenario: single-path and recursive queries over DBLP-like data.

Shows the shallow-document side of the paper's evaluation: selectivity
sweeps on single-path queries (Figure 11 right), recursive ``//``
lookups answered by reversed-schema-path prefix scans, and the space
comparison across the index family on shallow data (Figure 9, DBLP row).

Run with:  python examples/bibliography_search.py
"""

from repro import TwigIndexDatabase
from repro.datasets import generate_dblp
from repro.workloads import make_recursive, query


def main() -> None:
    print("Generating a synthetic DBLP-like bibliography ...")
    db = TwigIndexDatabase.from_documents([generate_dblp(scale=0.2)])
    print("Dataset:", db.describe())
    db.build_index("rootpaths")
    db.build_index("datapaths")
    db.build_index("edge")
    db.build_index("dataguide")

    print("\nSelectivity sweep (Figure 11, DBLP): year = 1950 / 1979 / 1998")
    for qid in ("Q1d", "Q2d", "Q3d"):
        workload_query = query(qid)
        rp = db.query(workload_query.xpath, strategy="rootpaths")
        dg = db.query(workload_query.xpath, strategy="dataguide_edge")
        print(
            f"  {qid}: {workload_query.xpath}\n"
            f"      result={rp.cardinality:5d}   RP cost={rp.total_cost:6d}"
            f"   DG+Edge cost={dg.total_cost:6d}"
        )

    print("\nRecursive queries cost almost the same as their rooted forms:")
    for qid in ("Q2d", "Q3d"):
        workload_query = query(qid)
        plain = db.query(workload_query.xpath, strategy="rootpaths")
        recursive = db.query(make_recursive(workload_query.xpath), strategy="rootpaths")
        overhead = 100.0 * (recursive.total_cost / max(1, plain.total_cost) - 1)
        print(
            f"  {qid}: rooted cost={plain.total_cost}, '//' cost={recursive.total_cost}"
            f"  (overhead {overhead:+.1f}%)"
        )

    print("\nAd hoc exploration with values and branches:")
    for xpath in (
        "//inproceedings[author='Alice Chen'][year='1998']/title",
        "//article[journal='TODS']/title",
        "/dblp/inproceedings[booktitle='ICDE']/year",
    ):
        result = db.query(xpath, strategy="datapaths")
        print(f"  {xpath}\n      {result.cardinality} matches, cost={result.total_cost}")
        assert result.ids == db.oracle(xpath)


if __name__ == "__main__":
    main()
