"""Sharded serving: partition documents, scatter-gather twig queries.

Walks the sharded tier end to end:

1. load a document corpus into a 4-shard :class:`ShardedQueryService`
   (each shard owns its own database, indexes, statistics and caches),
2. inspect where the placement policy put each document,
3. run twig queries scattered across the shards and check the merged
   answers against the index-free oracle,
4. scope a query to named documents (shard pruning),
5. keep serving while new documents arrive, and watch a write
   invalidate only its own shard's cached results.

Run with:  python examples/sharded_service.py
"""

from repro import ShardedQueryService
from repro.datasets import generate_xmark
from repro.workloads import query

SERVED = ("Q8x", "Q9x", "Q10x", "Q11x")
ROUNDS = 4


def main() -> None:
    # 1. Partition a four-document corpus across four shards.
    documents = [
        generate_xmark(scale=0.05, seed=100 + i, name=f"xmark-{i}") for i in range(4)
    ]
    # The service is a context manager: leaving the block drains the
    # scatter pool and the maintenance worker even if a step raises.
    with ShardedQueryService.from_documents(
        documents, num_shards=4, placement="round_robin"
    ) as service:
        service.build_index("rootpaths")
        service.build_index("datapaths")

        # 2. Where did the documents land, and which global ids do they own?
        print("Placements:")
        for placement in service.collection.placements():
            print(
                f"  {placement.name:10s} -> shard {placement.shard_index} "
                f"(global ids {placement.global_start}..{placement.global_end - 1})"
            )

        # 3. Scatter-gather execution: per-shard auto plans, merged answers.
        print("\nScatter-gather answers (checked against the oracle):")
        for qid in SERVED:
            xpath = query(qid).xpath
            result = service.execute(xpath, strategy="auto")
            assert result.ids == service.oracle(xpath), qid
            print(
                f"  {qid:5s} {result.cardinality:5d} matches  "
                f"strategy={result.strategy}  cost={result.total_cost}"
            )

        # 4. Shard pruning: a query scoped to one document touches one shard.
        xpath = query("Q8x").xpath
        scoped = service.execute(xpath, documents=["xmark-2"], use_result_cache=False)
        print(
            f"\nScoped to xmark-2: {scoped.cardinality} matches "
            f"(full corpus: {service.execute(xpath).cardinality})"
        )

        # 5. Serve while documents arrive: only the written shard re-executes,
        #    so the first pass after a write misses (one fresh partial per
        #    query) and the repeat pass hits on every shard.
        print("\nMixed read/write serving (each round serves the workload twice):")
        for round_number in range(ROUNDS):
            service.add_document(
                generate_xmark(scale=0.01, seed=900 + round_number, name=f"delta-{round_number}")
            )
            batch = service.execute_batch([query(qid).xpath for qid in SERVED] * 2)
            print(
                f"  round {round_number}: {len(batch)} queries, "
                f"hits={batch.cache_hits} misses={batch.cache_misses}, "
                f"batch cost={batch.total_cost}"
            )

        report = service.describe()
        print("\nTopology:", {k: report[k] for k in ("num_shards", "placement", "documents")})
        print("Result caches:", report["caches"]["result_cache"])
        print("Invalidations:", report["invalidations"])


if __name__ == "__main__":
    main()
