"""Observability tour: traces, metrics, ops events, a failover story.

Drives a sharded, replicated serving stack with telemetry on and shows
every read surface of ``docs/OBSERVABILITY.md``:

1. serve a small workload through a 2-shard, 3-replica
   :class:`~repro.shard.ShardedQueryService`,
2. kill one replica mid-workload with a deterministic
   :class:`~repro.faults.FaultPlan` and keep serving — answers never
   change, the failure costs only retries,
3. print the Prometheus-style metrics exposition (latency histograms
   with p50/p95/p99 per tier, per-strategy counters, failover
   activity),
4. print the ops event log — the injected fault, the health demotions
   and the quarantine, as one ordered story,
5. render the trace of the failed read: the ``replica`` span that
   errored and the retry that served the answer,
6. arm the slow-query log and render the captured trace tree.

Run with:  python examples/observability.py
"""

from repro import ShardedQueryService
from repro.datasets import generate_xmark
from repro.faults import FaultPlan, inject
from repro.workloads import query

SERVED = ("Q4x", "Q5x", "Q8x", "Q11x")


def documents():
    return [
        generate_xmark(scale=0.03, seed=100 + i, name=f"xmark-{i}")
        for i in range(6)
    ]


def main() -> None:
    # 1. A replicated stack.  One Telemetry hub is shared by the
    # facade, the shards, every replica and every per-replica
    # QueryService, so everything below reads from it.
    with ShardedQueryService.from_documents(
        documents(), num_shards=2, replicas=3
    ) as service:
        service.build_index("rootpaths")
        workload = [query(qid).xpath for qid in SERVED]

        print("== serving the workload (healthy) ==")
        baseline = {}
        for index, xpath in enumerate(workload):
            result = service.execute(
                xpath, query_id=f"warm-{index}", use_result_cache=False
            )
            baseline[xpath] = result.ids
            print(f"  {xpath}: {len(result.ids)} ids via {result.strategy}")

        # 2. Kill replica 1 of shard 0: every read it receives fails until
        # the health machine quarantines it.  Deterministic — the plan
        # fires on call counts, never on the wall clock.
        print("\n== injecting faults on shard 0, replica 1 ==")
        inject(service.collection.shards[0], 1, FaultPlan.failing_at(*range(1, 30)))
        for round_number in range(12):
            for index, xpath in enumerate(workload):
                result = service.execute(
                    xpath,
                    query_id=f"r{round_number}-{index}",
                    use_result_cache=False,
                )
                assert result.ids == baseline[xpath]  # failover is invisible
        health = service.collection.shards[0].health_report()
        print(f"  shard 0 replica states after the storm: {health['states']}")

        # 3. The aggregate view: the Prometheus exposition.
        print("\n== metrics exposition (excerpt) ==")
        for line in service.metrics_text().splitlines():
            if "quantile" in line or "repro_queries_total" in line or (
                "repro_stats" in line
                and any(k in line for k in ("retried", "failed", "rebalances"))
            ):
                print(f"  {line}")

        # 4. The ops event log: one ordered story per incident.
        print("\n== ops event log ==")
        for event in service.telemetry.events.events():
            attributes = {
                k: v for k, v in sorted(event.attributes.items()) if v is not None
            }
            print(f"  #{event.seq:<3} {event.kind:20} {attributes}")

        # 5. The trace of a failed read: the errored replica span and the
        # retry on a healthy replica, in one tree.
        print("\n== a failover trace ==")
        for trace in service.traces():
            replica_spans = trace.root.find("replica")
            if any(s.attributes.get("outcome") == "failed" for s in replica_spans):
                print(trace.render())
                break

        # 6. The slow-query log keeps outlier trees after the main ring
        # rotates; armed at 0 here so the next query qualifies.
        service.telemetry.slow_query_seconds = 0.0
        service.execute(workload[0], query_id="slow-demo", use_result_cache=False)
        print("\n== a slow-query trace ==")
        slow = service.slow_queries(last=1)[0]
        print(slow.render())
        print(
            f"\nslow queries retained: {len(service.slow_queries())}; "
            f"events published: {service.telemetry.events.total_published}; "
            f"traces finished: {service.telemetry.tracer.traces_finished}"
        )


if __name__ == "__main__":
    main()
