"""Quickstart: index the Figure 1 book document and run the paper's twig query.

Run with:  python examples/quickstart.py
"""

from repro import TwigIndexDatabase
from repro.datasets import BOOK_XML, FIGURE_1_QUERY


def main() -> None:
    # 1. Load an XML document (Figure 1(a) of the paper).
    db = TwigIndexDatabase.from_xml(BOOK_XML, name="figure1-book")
    print("Loaded:", db.describe())

    # 2. Build the two novel indices of the paper.
    db.build_index("rootpaths")
    db.build_index("datapaths")
    print("Index sizes (MB):", {k: round(v, 4) for k, v in db.index_sizes_mb().items()})

    # 3. Run the Figure 1(c) twig query with a single-lookup-per-branch plan.
    result = db.query(FIGURE_1_QUERY, strategy="rootpaths")
    print(f"\nQuery: {FIGURE_1_QUERY}")
    print("Matching author ids:", result.ids)
    for node_id in result.ids:
        author = db.node(node_id)
        names = [child.first_value() for child in author.structural_children()]
        print(f"  author id={node_id}: fn/ln = {names}")
    print("Logical I/O:", result.logical_io, "| weighted cost:", result.total_cost)

    # 4. Compare every strategy in the family on the same query.
    print("\nAll strategies (cost / answer):")
    for name, res in db.query_all_strategies(FIGURE_1_QUERY).items():
        print(f"  {name:20s} cost={res.total_cost:6d}  ids={res.ids}")

    # 5. The naive matcher is the ground truth every strategy must agree with.
    assert db.oracle(FIGURE_1_QUERY) == result.ids
    print("\nAll strategies agree with the naive matcher.")


if __name__ == "__main__":
    main()
