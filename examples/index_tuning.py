"""Index tuning: the space/functionality tradeoffs of Section 4.

Walks through the compression options of ROOTPATHS and DATAPATHS —
differential IdList encoding, SchemaPath dictionary encoding, and
workload-based HeadId pruning — and shows what each saves and what
each gives up.

Run with:  python examples/index_tuning.py
"""

from repro import TwigIndexDatabase, UnsupportedLookupError
from repro.datasets import generate_xmark
from repro.indexes import DataPathsIndex, RootPathsIndex
from repro.paths import HeadIdPruner
from repro.query import parse_xpath
from repro.storage import StatsCollector
from repro.workloads import queries_for_dataset


def size_kb(index) -> float:
    return index.estimated_size_bytes() / 1024.0


def main() -> None:
    db = TwigIndexDatabase.from_documents([generate_xmark(scale=0.1)])
    xml_db = db.db
    print("Dataset:", db.describe())

    print("\n-- Lossless: differential IdList encoding (Section 4.1)")
    rp_raw = RootPathsIndex(stats=StatsCollector(), differential_idlists=False).build(xml_db)
    rp = RootPathsIndex(stats=StatsCollector()).build(xml_db)
    print(f"  ROOTPATHS raw IdLists:          {size_kb(rp_raw):9.1f} KB")
    print(f"  ROOTPATHS delta-encoded IdLists:{size_kb(rp):9.1f} KB")

    print("\n-- Lossy: SchemaPath dictionary encoding (Section 4.2)")
    dp = DataPathsIndex(stats=StatsCollector()).build(xml_db)
    dp_dict = DataPathsIndex(stats=StatsCollector(), schema_path_dictionary=True).build(xml_db)
    print(f"  DATAPATHS:                      {size_kb(dp):9.1f} KB")
    print(f"  DATAPATHS + SchemaPathId:       {size_kb(dp_dict):9.1f} KB")
    try:
        list(dp_dict.free_lookup(("item", "quantity"), "2", anchored=False))
    except UnsupportedLookupError as error:
        print(f"  ... but '//' lookups now fail: {error}")

    print("\n-- Lossy: workload-based HeadId pruning (Section 4.3)")
    workload = [parse_xpath(q.xpath) for q in queries_for_dataset("xmark")]
    pruner = HeadIdPruner.from_workload(workload)
    dp_pruned = DataPathsIndex(stats=StatsCollector(), head_pruner=pruner).build(xml_db)
    print(f"  retained head labels: {sorted(pruner.branch_point_labels)}")
    print(f"  DATAPATHS pruned:               {size_kb(dp_pruned):9.1f} KB")
    site_id = xml_db.documents[0].root.node_id
    in_workload = list(dp_pruned.bound_lookup(site_id, ("item", "quantity"), "2"))
    print(f"  workload probe below 'site' still works: {len(in_workload)} matches")
    mailbox = next(iter(xml_db.iter_by_label("mailbox")))
    try:
        list(dp_pruned.bound_lookup(mailbox.node_id, ("mail",), None))
    except UnsupportedLookupError:
        print("  probe below a pruned head ('mailbox') is rejected, as expected")


if __name__ == "__main__":
    main()
