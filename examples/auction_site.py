"""Auction-site scenario: twig queries over the XMark-like dataset.

Demonstrates the paper's central claims on a deep document:

* ROOTPATHS/DATAPATHS answer branching queries with one index lookup
  per branch plus a join on the extracted branch-point ids,
* DATAPATHS additionally enables index-nested-loop joins, which win
  when one branch is selective and the branch point is low (Q10x),
* the Edge-table baseline pays a join per path step and degrades fast.

Run with:  python examples/auction_site.py
"""

from repro import TwigIndexDatabase
from repro.datasets import generate_xmark
from repro.workloads import query

QUERIES = ("Q1x", "Q4x", "Q6x", "Q10x", "Q12x")
STRATEGIES = ("rootpaths", "datapaths", "edge", "asr", "join_index")


def main() -> None:
    print("Generating a synthetic XMark-like auction site ...")
    db = TwigIndexDatabase.from_documents([generate_xmark(scale=0.15)])
    print("Dataset:", db.describe())

    print("\nBuilding the index family ...")
    db.build_all_indexes()
    for name, size in sorted(db.index_sizes_mb().items()):
        print(f"  {name:15s} {size:8.2f} MB")

    header = f"{'query':8s}" + "".join(f"{s:>14s}" for s in STRATEGIES) + f"{'result size':>14s}"
    print("\nWeighted logical cost per strategy (lower is better):")
    print(header)
    for qid in QUERIES:
        workload_query = query(qid)
        row = f"{qid:8s}"
        cardinality = 0
        for strategy in STRATEGIES:
            result = db.query(workload_query.xpath, strategy=strategy)
            cardinality = result.cardinality
            row += f"{result.total_cost:14d}"
        row += f"{cardinality:14d}"
        print(row)

    # Show the optimizer's plan choice for a low-branch-point query.
    low_branch = query("Q10x")
    db.query(low_branch.xpath, strategy="datapaths")
    strategy = db.engine.strategy("datapaths")
    strategy.evaluate(db.parse(low_branch.xpath))
    print(f"\nDATAPATHS plan for {low_branch.qid}: {strategy.last_plan}")


if __name__ == "__main__":
    main()
