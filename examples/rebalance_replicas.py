"""Dynamic topology: rebalance a skewed corpus, scale reads with replicas.

Walks the topology machinery end to end:

1. load a corpus whose names all hash onto shard 0 of 4 — the skew a
   sticky placement can never undo,
2. inspect the routing table (:class:`~repro.shard.ShardTopology`):
   per-shard document spread, epoch, retired spans,
3. plan and apply an online ``rebalance(policy="size_balanced")``,
   checking answers against the oracle after every individual move,
4. compact the retired spans the moves left behind,
5. rebuild the same corpus with 3 replicas per shard and watch reads
   fan out across the replicas while a write goes through to all.

Run with:  python examples/rebalance_replicas.py
"""

import zlib

from repro import ShardedQueryService
from repro.datasets import generate_xmark
from repro.workloads import query

SERVED = ("Q8x", "Q9x", "Q10x", "Q11x")
NUM_SHARDS = 4


def skewed_name(base: str) -> str:
    """A name whose CRC32 hashes onto shard 0 (the skew generator)."""
    for salt in range(10_000):
        name = f"{base}-{salt}"
        if zlib.crc32(name.encode("utf-8")) % NUM_SHARDS == 0:
            return name
    raise RuntimeError("no skewed name found")


def documents():
    return [
        generate_xmark(scale=0.04, seed=100 + i, name=skewed_name(f"xmark-{i}"))
        for i in range(6)
    ]


def main() -> None:
    # 1. A pathologically skewed corpus: hash placement, colliding names.
    #    (`with` drains the scatter pool and maintenance worker on exit.)
    with ShardedQueryService.from_documents(
        documents(), num_shards=NUM_SHARDS, placement="hash"
    ) as service:
        service.build_index("rootpaths")
        service.build_index("datapaths")

        # 2. The routing table before: everything on shard 0.
        topology = service.collection.topology
        print("Documents per shard (skewed):", topology.live_counts())
        print("Topology epoch:", topology.epoch)

        oracle = {qid: service.oracle(query(qid).xpath) for qid in SERVED}

        # 3. Rebalance online, one move at a time; answers never change.
        plan = service.plan_rebalance("size_balanced")
        print(f"\nRebalance plan ({len(plan)} moves):")
        for move in plan:
            print(
                f"  {move.placement.name:14s} shard "
                f"{move.placement.shard_index} -> {move.target_shard}"
            )
            service.move_document(move.placement, move.target_shard)
            for qid in SERVED:  # every intermediate topology answers exactly
                assert service.execute(query(qid).xpath).ids == oracle[qid], qid
        print("Documents per shard (rebalanced):", topology.live_counts())

        # 4. The moves retired the source spans; compaction prunes them.
        print(f"\nRetired spans before compaction: {topology.retired_span_count}")
        pruned = service.compact()
        print(f"Pruned {pruned} spans; topology epoch now {topology.epoch}")

        report = service.describe()
        print("Moves recorded:", report["maintenance"]["documents_moved"])

    # 5. Replicas: the same corpus, 3 identical engines per shard.
    #    Reads fan out (round-robin here; "least_loaded" and "sticky"
    #    are the other pickers), writes go through to every replica.
    with ShardedQueryService.from_documents(
        documents(),
        num_shards=2,
        placement="round_robin",
        replicas=3,
        read_picker="round_robin",
    ) as replicated:
        replicated.build_index("rootpaths")
        replicated.build_index("datapaths")
        for _ in range(6):
            for qid in SERVED:
                result = replicated.execute(query(qid).xpath, use_result_cache=False)
                assert result.ids == replicated.oracle(query(qid).xpath), qid
        replicated.add_document(generate_xmark(scale=0.01, seed=999, name="delta"))
        report = replicated.describe()
        print("\nReplica reads per shard:", report["replica_reads"]["per_shard"])
        print(
            "Write-through adds (summed across replicas):",
            report["maintenance"]["documents_added"],
        )


if __name__ == "__main__":
    main()
