"""Document removal & replacement with online index maintenance.

Walks the full mutation lifecycle the serving tier supports: load a
corpus, build indexes, then **remove** and **replace** documents while
every index is maintained incrementally — no rebuild, no stale answers
— first on a single engine, then on a sharded service.

Run with:  python examples/remove_replace.py
"""

from repro import ShardedQueryService, TwigIndexDatabase
from repro.datasets import generate_xmark
from repro.storage.stats import maintenance_cost

QUERY = "/site/people/person/name"


def main() -> None:
    # 1. Load three documents and build the incrementally maintained
    #    index family (ROOTPATHS, DATAPATHS, Edge, DataGuide).
    documents = [
        generate_xmark(scale=0.05, seed=seed, name=f"doc-{position}")
        for position, seed in enumerate((7, 21, 99))
    ]
    db = TwigIndexDatabase.from_documents(documents)
    for name in ("rootpaths", "datapaths", "edge", "dataguide"):
        db.build_index(name)
    print("Loaded:", db.describe())
    print(f"{QUERY!r} matches: {len(db.query(QUERY).ids)}")

    # 2. Remove one document.  Every built index deletes exactly the
    #    rows that document contributed (B+-tree deletes, IdList
    #    shrink, catalog-statistic decrements) — far cheaper than the
    #    rebuild a correct answer would otherwise require.
    before = db.stats.snapshot()
    db.remove_document("doc-1")
    removal = db.stats.diff(before)
    print(f"\nRemoved 'doc-1': cost={maintenance_cost(removal)} "
          f"(btree_deletes={removal['btree_deletes']}, "
          f"page_writes={removal['btree_page_writes']})")
    print(f"{QUERY!r} matches now: {len(db.query(QUERY).ids)}")
    assert db.query(QUERY).ids == db.oracle(QUERY)

    # 3. Replace a document with new content.  One locked remove + add;
    #    the replacement gets fresh node ids at the watermark and keeps
    #    the name, so document-scoped workflows continue to work.
    replacement = generate_xmark(scale=0.02, seed=123, name="doc-2")
    db.replace_document("doc-2", replacement)
    print(f"\nReplaced 'doc-2': {QUERY!r} matches: {len(db.query(QUERY).ids)}")
    assert db.query(QUERY).ids == db.oracle(QUERY)

    # 4. The service layer treats both as *incremental* changes: cached
    #    results were dropped, parsed plans survived.
    report = db.service.describe()
    print("Service maintenance counters:", report["maintenance"])
    print("Invalidations: result-only =", report["result_invalidations"],
          "| full =", report["full_invalidations"])

    # 5. The same mutations on a sharded service route to the owning
    #    shard only and stay answer-identical to the single engine.
    with ShardedQueryService(num_shards=2, placement="hash") as sharded:
        for position, seed in enumerate((7, 21, 99)):
            sharded.add_document(
                generate_xmark(scale=0.05, seed=seed, name=f"doc-{position}")
            )
        sharded.build_index("rootpaths")
        sharded.remove_document("doc-1")
        sharded.replace_document(
            "doc-2", generate_xmark(scale=0.02, seed=123, name="doc-2")
        )
        sharded_ids = sharded.execute(QUERY).ids
        print(f"\nSharded after remove+replace: {len(sharded_ids)} matches "
              f"(identical to single engine: {sharded_ids == db.query(QUERY).ids})")
        assert sharded_ids == db.query(QUERY).ids


if __name__ == "__main__":
    main()
