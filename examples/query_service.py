"""Query service: cached, batched serving with optimizer-chosen strategies.

Builds the XMark-like dataset, then serves a repeated-query workload the
way a production front-end would: through the
:class:`~repro.service.QueryService`, which caches parsed plans and
results, reuses strategy instances, and lets the optimizer pick between
ROOTPATHS and DATAPATHS per query.

Run with:  python examples/query_service.py
"""

from repro import TwigIndexDatabase
from repro.datasets import generate_xmark
from repro.obs.clock import now
from repro.workloads import query

SERVED = ("Q1x", "Q4x", "Q6x", "Q8x", "Q10x", "Q11x")
REPEATS = 25


def main() -> None:
    # 1. Load the dataset and build the paper's two novel indices.
    db = TwigIndexDatabase.from_documents([generate_xmark(scale=0.2, seed=42)])
    db.build_index("rootpaths")
    db.build_index("datapaths")
    print("Loaded:", db.describe())

    # 2. Ask the optimizer how it would evaluate each workload query.
    print("\nOptimizer choices (cross-strategy cost estimates):")
    for qid in SERVED:
        choice = db.service.choose(query(qid).xpath)
        print(f"  {qid:5s} -> {choice}")

    # 3. Serve a repeated-query workload, per-query vs batched+cached.
    workload = [query(qid).xpath for _ in range(REPEATS) for qid in SERVED]

    started = now()
    for xpath in workload:
        db.engine.execute(xpath, strategy="rootpaths")
    per_query_seconds = now() - started

    started = now()
    batch = db.execute_batch(workload, strategy="auto")
    batched_seconds = now() - started

    print(f"\nServed {len(workload)} queries ({len(SERVED)} distinct x {REPEATS}):")
    print(f"  per-query execute : {per_query_seconds:.3f}s "
          f"({len(workload) / per_query_seconds:,.0f} queries/s)")
    print(f"  batched + cached  : {batched_seconds:.3f}s "
          f"({len(workload) / batched_seconds:,.0f} queries/s)")
    print(f"  speedup           : {per_query_seconds / batched_seconds:.1f}x")
    print(f"  batch logical cost: {batch.total_cost} "
          f"(hits={batch.cache_hits}, misses={batch.cache_misses})")
    print("  strategies used   :", batch.strategy_counts)

    # 4. Every answer still matches the index-free oracle.
    for qid in SERVED:
        xpath = query(qid).xpath
        assert db.service.execute(xpath).ids == db.oracle(xpath), qid
    print("\nAll served answers agree with the naive matcher.")

    # 5. Document changes invalidate cached results automatically.
    db.load_xml("<site><regions/></site>", name="late-arrival")
    print("After add_document:", db.service.describe()["result_cache"])


if __name__ == "__main__":
    main()
